package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveKendall is the O(n²) τ-b reference.
func naiveKendall(x, y []float64) float64 {
	n := len(x)
	var concord, discord, tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case dx*dy > 0:
				concord++
			default:
				discord++
			}
		}
	}
	total := float64(n) * float64(n-1) / 2
	denom := math.Sqrt((total - tiesX) * (total - tiesY))
	if denom == 0 {
		return math.NaN()
	}
	return (concord - discord) / denom
}

func TestKendallKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if got := KendallTau(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("tau(x,x) = %v", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := KendallTau(x, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("tau reversed = %v", got)
	}
	// Hand-checked: one swap in 4 elements: C=5, D=1, tau = 4/6.
	y := []float64{1, 3, 2, 4}
	if got := KendallTau([]float64{1, 2, 3, 4}, y); math.Abs(got-4.0/6) > 1e-12 {
		t.Errorf("tau one swap = %v, want %v", got, 4.0/6)
	}
	if !math.IsNaN(KendallTau(x, []float64{1, 2})) {
		t.Error("length mismatch should be NaN")
	}
	if !math.IsNaN(KendallTau([]float64{1, 1}, []float64{2, 3})) {
		t.Error("all-tied x should be NaN")
	}
}

// Property: the merge-sort implementation matches the naive O(n²)
// reference on random data with ties.
func TestQuickKendallAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(8)) // many ties
			y[i] = float64(rng.Intn(8))
		}
		a := KendallTau(x, y)
		b := naiveKendall(x, y)
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestCountInversions(t *testing.T) {
	if got := countInversions([]float64{3, 1, 2}); got != 2 {
		t.Errorf("inversions = %d, want 2", got)
	}
	if got := countInversions([]float64{1, 2, 3}); got != 0 {
		t.Errorf("inversions = %d, want 0", got)
	}
	if got := countInversions([]float64{4, 3, 2, 1}); got != 6 {
		t.Errorf("inversions = %d, want 6", got)
	}
}
