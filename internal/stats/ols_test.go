package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSRecoversExactLinearModel(t *testing.T) {
	// y = 3 + 2*x1 - 0.5*x2, noiseless: coefficients exact, R² = 1.
	n := 50
	rng := rand.New(rand.NewSource(1))
	x1 := make([]float64, n)
	x2 := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1[i] = rng.NormFloat64()
		x2[i] = rng.NormFloat64() * 3
		y[i] = 3 + 2*x1[i] - 0.5*x2[i]
	}
	res, err := OLS(y, x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Coef[0], 3, 1e-9, "intercept")
	approx(t, res.Coef[1], 2, 1e-9, "beta1")
	approx(t, res.Coef[2], -0.5, 1e-9, "beta2")
	approx(t, res.R2, 1, 1e-9, "R2")
	if res.N != n {
		t.Errorf("N = %d, want %d", res.N, n)
	}
	for i := range y {
		approx(t, res.Fitted[i], y[i], 1e-9, "fitted")
	}
}

func TestOLSInterceptOnly(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	res, err := OLS(y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Coef[0], 2.5, 1e-12, "intercept-only = mean")
	approx(t, res.R2, 0, 1e-12, "intercept-only R2 = 0")
}

func TestOLSSimpleRegressionMatchesPearson(t *testing.T) {
	// Single-predictor R² equals squared Pearson correlation.
	rng := rand.New(rand.NewSource(2))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 1.5*x[i] + rng.NormFloat64()
	}
	res, err := OLS(y, x)
	if err != nil {
		t.Fatal(err)
	}
	r := Pearson(x, y)
	approx(t, res.R2, r*r, 1e-9, "R² == r²")
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil); err == nil {
		t.Error("empty y accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("ragged predictor accepted")
	}
	if _, err := OLS([]float64{1, 2}, []float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("n <= k accepted")
	}
	// Perfect collinearity: x2 = 2*x1.
	x1 := []float64{1, 2, 3, 4, 5}
	x2 := []float64{2, 4, 6, 8, 10}
	y := []float64{1, 2, 3, 4, 5}
	if _, err := OLS(y, x1, x2); err == nil {
		t.Error("collinear design accepted")
	}
}

// Property: R² is in [0,1] for any well-posed problem, and adding a pure
// noise predictor never lowers in-sample R².
func TestQuickOLSR2Monotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(50)
		x := make([]float64, n)
		z := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			z[i] = rng.NormFloat64()
			y[i] = x[i] + 0.5*rng.NormFloat64()
		}
		r1, err1 := OLS(y, x)
		r2, err2 := OLS(y, x, z)
		if err1 != nil || err2 != nil {
			return true // singular by chance; skip
		}
		if r1.R2 < -1e-9 || r1.R2 > 1+1e-9 {
			return false
		}
		return r2.R2 >= r1.R2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearKnownSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, x[0], 1, 1e-12, "x0")
	approx(t, x[1], 3, 1e-12, "x1")
	// Singular system is rejected.
	if _, err := solveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestHistogramSharesAndCCDF(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	h := NewHistogram(xs, 5)
	if h.N != 10 {
		t.Fatalf("N = %d", h.N)
	}
	var total float64
	for i := range h.Counts {
		if h.Counts[i] != 2 {
			t.Errorf("bin %d count = %d, want 2", i, h.Counts[i])
		}
		total += h.Share(i)
	}
	approx(t, total, 1, 1e-12, "shares sum to 1")
	if h.Render(20) == "" {
		t.Error("Render returned empty")
	}

	vals, prob := CCDF([]float64{1, 1, 2, 5})
	if len(vals) != 3 {
		t.Fatalf("CCDF distinct values = %d, want 3", len(vals))
	}
	approx(t, prob[0], 1, 1e-12, "P(X>=1)")
	approx(t, prob[1], 0.5, 1e-12, "P(X>=2)")
	approx(t, prob[2], 0.25, 1e-12, "P(X>=5)")
	if v, p := CCDF(nil); v != nil || p != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(nil, 4)
	if h.N != 0 {
		t.Error("empty histogram has observations")
	}
	// All-equal values land in one bin without dividing by zero.
	h = NewHistogram([]float64{5, 5, 5}, 3)
	if h.Counts[0] != 3 {
		t.Errorf("constant data: counts = %v", h.Counts)
	}
	if math.IsNaN(h.BinCenter(0)) {
		t.Error("BinCenter NaN for constant data")
	}
}
