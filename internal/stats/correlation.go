package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation between x and y.
// It returns NaN if the slices differ in length, have fewer than two
// elements, or either has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LogLogPearson returns the Pearson correlation of log10(x) vs log10(y),
// silently dropping pairs where either value is not strictly positive.
// This is the correlation the paper reports for edge weight vs average
// neighbor edge weight (Figure 6).
func LogLogPearson(x, y []float64) float64 {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if i < len(y) && x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log10(x[i]))
			ly = append(ly, math.Log10(y[i]))
		}
	}
	return Pearson(lx, ly)
}

// Ranks returns the fractional ranks of xs (1-based), assigning tied
// values the average of the ranks they span — the convention required
// for Spearman correlation with ties.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// ranks i+1 .. j+1 (1-based) are tied: average them.
		avg := float64(i+j+2) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns Spearman's rank correlation coefficient between x and
// y, handling ties by fractional ranking. The paper uses it as the
// Stability metric: corr(N_t, N_{t+1}) over backbone edges (Section V-F).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	return Pearson(Ranks(x), Ranks(y))
}
