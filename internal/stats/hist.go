package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram bins values into equal-width bins over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// the data range. Values exactly at Max land in the last bin.
func NewHistogram(xs []float64, bins int) *Histogram {
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 || bins <= 0 {
		return h
	}
	h.Min, h.Max = MinMax(xs)
	width := (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - h.Min) / width)
		}
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
		h.N++
	}
	return h
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*width
}

// Share returns the fraction of observations in bin i.
func (h *Histogram) Share(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Render draws a simple fixed-width ASCII bar chart, one row per bin —
// used by the experiment drivers to emit Figure 2's score distributions.
func (h *Histogram) Render(width int) string {
	var sb strings.Builder
	maxShare := 0.0
	for i := range h.Counts {
		if s := h.Share(i); s > maxShare {
			maxShare = s
		}
	}
	for i := range h.Counts {
		share := h.Share(i)
		bar := 0
		if maxShare > 0 {
			bar = int(math.Round(share / maxShare * float64(width)))
		}
		fmt.Fprintf(&sb, "%9.3f | %-*s %.4f\n", h.BinCenter(i), width, strings.Repeat("#", bar), share)
	}
	return sb.String()
}

// CCDF returns the points of the empirical complementary-cumulative
// distribution P(X >= x) evaluated at each distinct value of xs, sorted
// ascending. Figure 5 plots this for the six country networks' edge
// weights on log-log axes.
func CCDF(xs []float64) (values, prob []float64) {
	if len(xs) == 0 {
		return nil, nil
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	for i := 0; i < len(s); {
		j := i
		for j+1 < len(s) && s[j+1] == s[i] {
			j++
		}
		values = append(values, s[i])
		prob = append(prob, (n-float64(i))/n)
		i = j + 1
	}
	return values, prob
}
