package stats

import (
	"math"
)

// NormalCDF returns P(Z <= z) for a standard normal variable.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the z such that NormalCDF(z) == p, using the
// Acklam rational approximation (relative error < 1.15e-9), refined by
// one Halley step. It lets callers translate the NC backbone's δ
// parameter to and from one-tailed p-values (δ = 1.28, 1.64, 2.32
// approximate p = 0.1, 0.05, 0.01 in the paper).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0:
			return math.Inf(-1)
		case p == 1:
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogBinomialCoef returns log C(n, k) via log-gamma.
func LogBinomialCoef(n, k float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln, _ := math.Lgamma(n + 1)
	lk, _ := math.Lgamma(k + 1)
	lnk, _ := math.Lgamma(n - k + 1)
	return ln - lk - lnk
}

// BinomialLogPMF returns log P(X = k) for X ~ Binomial(n, p).
func BinomialLogPMF(k, n, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogBinomialCoef(n, k) + k*math.Log(p) + (n-k)*math.Log1p(-p)
}

// BinomialSF returns the upper tail P(X >= k) for X ~ Binomial(n, p),
// computed through the regularized incomplete beta function:
// P(X >= k) = I_p(k, n-k+1). This is the p-value of the footnote-2
// variant of the Noise-Corrected backbone, which tests an observed edge
// weight directly against the binomial null model.
func BinomialSF(k, n, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	return RegIncBeta(k, n-k+1, p)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// evaluated with the Lentz continued fraction (Numerical Recipes §6.4).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	la, _ := math.Lgamma(a + b)
	lb, _ := math.Lgamma(a)
	lc, _ := math.Lgamma(b)
	front := math.Exp(la - lb - lc + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// BetaMoments returns the mean and variance of a Beta(alpha, beta)
// distribution (paper Eqs. 5 and 6).
func BetaMoments(alpha, beta float64) (mean, variance float64) {
	s := alpha + beta
	mean = alpha / s
	variance = alpha * beta / (s * s * (s + 1))
	return mean, variance
}

// BetaFromMoments inverts BetaMoments: given a target mean mu in (0,1)
// and variance sigma2 in (0, mu(1-mu)), it returns the alpha and beta
// parameters (paper Eqs. 7 and 8). It is the moment-matching step that
// turns the hypergeometric prior moments into a conjugate Beta prior in
// the Noise-Corrected backbone.
func BetaFromMoments(mu, sigma2 float64) (alpha, beta float64) {
	alpha = mu*mu/sigma2*(1-mu) - mu
	beta = mu*((1-mu)*(1-mu)/sigma2+1) - 1
	return alpha, beta
}
