package stats

import (
	"fmt"
	"math"
)

// OLSResult holds a fitted ordinary-least-squares regression.
type OLSResult struct {
	// Coef holds the fitted coefficients; Coef[0] is the intercept and
	// Coef[1..] correspond to the predictor columns in order.
	Coef []float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
	// N is the number of observations used.
	N int
	// Fitted holds the in-sample predictions, aligned with the input rows.
	Fitted []float64
}

// OLS fits y = b0 + b1*x1 + ... + bk*xk by ordinary least squares.
// xs holds one slice per predictor, each the same length as y.
// The normal equations are solved by Gaussian elimination with partial
// pivoting; perfectly collinear predictors yield an error.
//
// This is the regression engine behind the paper's Quality criterion
// (Table II): Quality = R² on backbone edges / R² on all edges.
func OLS(y []float64, xs ...[]float64) (*OLSResult, error) {
	n := len(y)
	k := len(xs)
	if n == 0 {
		return nil, fmt.Errorf("stats: OLS with no observations")
	}
	for j, x := range xs {
		if len(x) != n {
			return nil, fmt.Errorf("stats: OLS predictor %d has %d rows, want %d", j, len(x), n)
		}
	}
	if n <= k {
		return nil, fmt.Errorf("stats: OLS needs more observations (%d) than parameters (%d)", n, k+1)
	}

	p := k + 1 // parameters including intercept
	// Build X'X (p×p) and X'y (p) directly; column 0 is the constant 1.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	col := func(j, row int) float64 {
		if j == 0 {
			return 1
		}
		return xs[j-1][row]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			ci := col(i, r)
			xty[i] += ci * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += ci * col(j, r)
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	coef, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS: %w", err)
	}

	fitted := make([]float64, n)
	my := Mean(y)
	var ssRes, ssTot float64
	for r := 0; r < n; r++ {
		pred := coef[0]
		for j := 1; j < p; j++ {
			pred += coef[j] * xs[j-1][r]
		}
		fitted[r] = pred
		d := y[r] - pred
		ssRes += d * d
		dt := y[r] - my
		ssTot += dt * dt
	}
	r2 := math.NaN()
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return &OLSResult{Coef: coef, R2: r2, N: n, Fitted: fitted}, nil
}

// solveLinear solves A x = b in place by Gaussian elimination with
// partial pivoting. A must be square and b the matching length.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for c := 0; c < n; c++ {
		// Partial pivot.
		pivot := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[pivot][c]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][c]) < 1e-12 {
			return nil, fmt.Errorf("singular design matrix (collinear predictors)")
		}
		a[c], a[pivot] = a[pivot], a[c]
		b[c], b[pivot] = b[pivot], b[c]
		inv := 1 / a[c][c]
		for r := c + 1; r < n; r++ {
			f := a[r][c] * inv
			if f == 0 {
				continue
			}
			for j := c; j < n; j++ {
				a[r][j] -= f * a[c][j]
			}
			b[r] -= f * b[c]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for j := r + 1; j < n; j++ {
			v -= a[r][j] * x[j]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}
