package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Errorf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single value should be NaN")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 added 1e6 times: naive float64 summation loses the tail.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("Kahan sum = %.18f, want %.18f", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Median(xs), 3, 0, "median")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	approx(t, Quantile(xs, 0.1), 1.4, 1e-12, "q10 interpolated")
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) {
		t.Error("invalid quantile inputs should return NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestPearsonExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	approx(t, Pearson(x, y), 1, 1e-12, "perfect positive")
	yneg := []float64{8, 6, 4, 2}
	approx(t, Pearson(x, yneg), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance should yield NaN")
	}
	if !math.IsNaN(Pearson(x, []float64{1, 2})) {
		t.Error("length mismatch should yield NaN")
	}
}

func TestSpearmanTiesAndMonotone(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 1, 4, 3, 5}
	// Hand-computed: d = (1-2, 2-1, 3-4, 4-3, 5-5), sum d² = 4, ρ = 1-24/120 = 0.8.
	approx(t, Spearman(x, y), 0.8, 1e-12, "spearman")
	// Ties: ranks average.
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range r {
		approx(t, r[i], want[i], 1e-12, "rank with ties")
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestQuickSpearmanMonotoneInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		base := Spearman(x, y)
		tx := make([]float64, n)
		for i := range x {
			tx[i] = math.Exp(2*x[i]) + 5 // strictly increasing
		}
		return math.Abs(Spearman(tx, y)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: |Pearson| <= 1 and Pearson is symmetric.
func TestQuickPearsonBoundsSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			y[i] = rng.NormFloat64() * 10
		}
		r := Pearson(x, y)
		if math.IsNaN(r) {
			return true
		}
		return r <= 1+1e-12 && r >= -1-1e-12 && math.Abs(r-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLogLogPearsonDropsNonPositive(t *testing.T) {
	x := []float64{10, 100, 1000, -5, 0}
	y := []float64{1, 10, 100, 7, 7}
	approx(t, LogLogPearson(x, y), 1, 1e-12, "log-log on positives only")
}
