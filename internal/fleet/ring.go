package fleet

import "crypto/sha256"

// Digest is the fleet's shard key: the sha256 of a request's raw body,
// the same content address the daemon's caches are keyed by. Routing
// on it sends every re-post of a body to the same peer, so that peer's
// graph and score caches accumulate all the hits for that content.
type Digest = [sha256.Size]byte

// rendezvousScore is the highest-random-weight score binding one peer
// address to one digest: FNV-1a 64 over the address bytes then the
// digest bytes. It is a pure function of (addr, digest), so every peer
// computes the same owner with no coordination — and when a peer
// leaves, only the digests it owned move (the defining rendezvous
// property, tested in ring_test.go).
func rendezvousScore(addr string, d Digest) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= prime64
	}
	for _, b := range d {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// owner picks the digest's owning address from members by highest
// rendezvous score, breaking exact ties by smaller address so the
// choice stays total-order deterministic. An empty membership returns
// "".
func owner(members []string, d Digest) string {
	best := ""
	var bestScore uint64
	for _, addr := range members {
		s := rendezvousScore(addr, d)
		if best == "" || s > bestScore || (s == bestScore && addr < best) {
			best, bestScore = addr, s
		}
	}
	return best
}
