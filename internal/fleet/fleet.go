// Package fleet turns N backboned processes into one logical service:
// a rendezvous-hash ring routes each request body (by its sha256
// content digest, the same key the daemon's caches use) to one owning
// peer, an HTTP client forwards scoring requests there with per-attempt
// timeouts, retry/backoff and per-peer circuit breakers, and identical
// concurrent forwards are deduplicated in flight.
//
// The fleet degrades, it does not fail: when the owning peer is
// unreachable — breaker open, retries exhausted, or mid-stream
// connection loss — the forwarding peer computes the answer itself.
// Correctness is never lost on peer loss, only cache locality; the
// daemon stamps X-Backbone-Degraded on such responses so the loss is
// observable.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/resilient"
)

// ForwardedHeader marks a request as already routed by a peer. The
// receiving daemon serves it locally, whatever its own ring says —
// one hop maximum, so divergent membership views can never ping-pong
// a request around the fleet.
const ForwardedHeader = "X-Backbone-Forwarded"

// DeadlineHeader carries a request's remaining time budget across
// fleet hops as integer milliseconds. It is a *relative* budget, not
// an absolute deadline, so peers need no clock synchronization: the
// forwarder stamps what is left of its own deadline minus the
// estimated transit cost to the peer, and the receiving daemon admits
// the request against that remaining budget.
const DeadlineHeader = "X-Backbone-Deadline"

// DurationHeader is the serving daemon's self-reported execution time
// in milliseconds. The forwarder subtracts it from each attempt's
// wall-clock time to measure per-peer transit cost — the amount it
// deducts from the budget it propagates on the next attempt.
const DurationHeader = "X-Backbone-Duration-Ms"

// relayHeaders are the response headers a forwarding peer relays back
// to its client, by prefix or exact (canonical) name.
const relayPrefix = "X-Backbone-"

// Config assembles a Fleet.
type Config struct {
	// Self is this process's advertised address, as it appears in
	// Peers. Peers is the full fleet membership; every peer must be
	// configured with the same membership (ordering does not matter —
	// rendezvous hashing is order-free).
	Self  string
	Peers []string
	// Client is the forwarding HTTP client (default: http.Client with
	// a 30s overall safety timeout; per-attempt budgets come from
	// AttemptTimeout).
	Client *http.Client
	// AttemptTimeout bounds each forward attempt (default 10s); the
	// request context still caps the total.
	AttemptTimeout time.Duration
	// Retry configures the backoff executor; its zero value applies
	// the resilient defaults (3 attempts, 50ms..2s full jitter).
	Retry resilient.Retry
	// Breaker configures the per-peer circuit breakers; its zero
	// value applies the resilient defaults.
	Breaker resilient.BreakerConfig
	// MaxResponseBytes bounds a relayed peer response (default 1GiB).
	// Forwarded responses are buffered in full before relaying so a
	// peer dying mid-body is detected while local fallback is still
	// possible.
	MaxResponseBytes int64
	Logf             func(format string, args ...any)
}

// Peer is one fleet member plus its health and traffic accounting.
type Peer struct {
	Addr    string
	breaker *resilient.Breaker

	forwards  atomic.Uint64 // forward calls routed at this peer
	retries   atomic.Uint64 // extra attempts beyond each first
	failures  atomic.Uint64 // failed attempts (transport or 5xx)
	fallbacks atomic.Uint64 // forwards abandoned for local execution
	// transitNs is the EWMA of measured transit cost to this peer
	// (attempt wall-clock minus the peer's self-reported execution
	// time), in nanoseconds; 0 means unmeasured.
	transitNs atomic.Int64
}

// initialTransit seeds a peer's transit estimate before the first
// measured response: generous for a LAN so early forwards are not
// rejected for budget, corrected by the first round trip.
const initialTransit = 5 * time.Millisecond

// transit returns the current transit-cost estimate.
func (p *Peer) transit() time.Duration {
	if ns := p.transitNs.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return initialTransit
}

// observeTransit folds one measured transit cost into the EWMA
// (25% weight on the new sample).
func (p *Peer) observeTransit(d time.Duration) {
	if d < 0 {
		d = 0
	}
	for {
		old := p.transitNs.Load()
		cur := old
		if cur <= 0 {
			cur = int64(initialTransit)
		}
		next := (3*cur + int64(d)) / 4
		if next < 1 {
			next = 1
		}
		if p.transitNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// PeerStats is one peer's /statsz row.
type PeerStats struct {
	Addr      string                 `json:"addr"`
	Self      bool                   `json:"self,omitempty"`
	Forwards  uint64                 `json:"forwards"`
	Retries   uint64                 `json:"retries"`
	Failures  uint64                 `json:"failures"`
	Fallbacks uint64                 `json:"fallbacks"`
	TransitMs float64                `json:"transit_ms,omitempty"`
	Breaker   resilient.BreakerStats `json:"breaker"`
}

// Fleet is the peer-aware routing layer in front of one daemon's local
// execution path.
type Fleet struct {
	self    string
	members []string // sorted, deduped membership incl. self
	peers   map[string]*Peer
	client  *http.Client
	retry   resilient.Retry
	attempt time.Duration
	maxResp int64
	logf    func(string, ...any)
	flights flightGroup
}

// New validates the membership and builds the fleet. Self is added to
// the membership if the peer list omitted it.
func New(cfg Config) (*Fleet, error) {
	if cfg.Self == "" {
		return nil, errors.New("fleet: self address is required")
	}
	seen := map[string]bool{}
	var members []string
	for _, addr := range append(append([]string{}, cfg.Peers...), cfg.Self) {
		addr = strings.TrimSpace(addr)
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		members = append(members, addr)
	}
	if len(members) < 2 {
		return nil, errors.New("fleet: need at least one peer besides self")
	}
	sort.Strings(members)

	f := &Fleet{
		self:    cfg.Self,
		members: members,
		peers:   make(map[string]*Peer, len(members)),
		client:  cfg.Client,
		retry:   cfg.Retry,
		attempt: cfg.AttemptTimeout,
		maxResp: cfg.MaxResponseBytes,
		logf:    cfg.Logf,
	}
	if f.client == nil {
		f.client = &http.Client{Timeout: 30 * time.Second}
	}
	if f.attempt <= 0 {
		f.attempt = 10 * time.Second
	}
	if f.maxResp <= 0 {
		f.maxResp = 1 << 30
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	for _, addr := range members {
		p := &Peer{Addr: addr}
		if addr != f.self {
			p.breaker = resilient.NewBreaker(cfg.Breaker)
		}
		f.peers[addr] = p
	}
	return f, nil
}

// Self returns this process's advertised address.
func (f *Fleet) Self() string { return f.self }

// Members returns the sorted fleet membership.
func (f *Fleet) Members() []string { return append([]string(nil), f.members...) }

// Owner returns the address owning a body digest under rendezvous
// hashing. Every peer with the same membership computes the same
// owner.
func (f *Fleet) Owner(d Digest) string { return owner(f.members, d) }

// Response is a buffered peer response ready to relay: the status, the
// relayable header subset, and the full body.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// ErrPeerUnavailable wraps forward failures that exhausted their
// retries or hit an open breaker; the caller's contract is to fall
// back to local execution.
var ErrPeerUnavailable = errors.New("fleet: peer unavailable")

// Forward sends the request to addr (the digest's owner) and returns
// its buffered response. Identical concurrent forwards coalesce into
// one upstream request. Peer responses below 500 — including 4xx
// caller mistakes, which every peer would answer identically — are
// successes to relay as-is; transport errors, truncated bodies and
// 5xx statuses are retried with backoff (a 503's Retry-After raises
// the pause) until the attempt budget, the request deadline, or the
// peer's breaker says stop, and the error then wraps
// ErrPeerUnavailable.
func (f *Fleet) Forward(ctx context.Context, addr string, d Digest, path, rawQuery, contentType, accept string, body []byte) (*Response, error) {
	return f.ForwardRequest(ctx, addr, d, http.MethodPost, path, rawQuery, contentType, accept, body)
}

// ForwardRequest is Forward with an explicit HTTP method — session
// reads ride rendezvous routing as GETs (nil body), session deletes as
// DELETEs. The coalescing key includes the method, and d is the
// caller's coalescing identity: for stateless runs the body digest, for
// stateful session updates a digest of the update payload (two distinct
// updates to one session must never collapse into one upstream call).
func (f *Fleet) ForwardRequest(ctx context.Context, addr string, d Digest, method, path, rawQuery, contentType, accept string, body []byte) (*Response, error) {
	p := f.peers[addr]
	if p == nil || addr == f.self {
		return nil, fmt.Errorf("%w: %q is not a forwardable peer", ErrPeerUnavailable, addr)
	}
	p.forwards.Add(1)
	key := flightKey{digest: d, method: method, path: path, query: rawQuery, contentType: contentType}
	resp, _, err := f.flights.do(ctx, key, func() (*Response, error) {
		var out *Response
		err := f.retry.Do(ctx, func(ctx context.Context, attempt int) error {
			if attempt > 0 {
				p.retries.Add(1)
			}
			if err := p.breaker.Allow(); err != nil {
				// An open breaker ends the whole forward, not just
				// this attempt: local fallback is cheaper than waiting
				// out a cooldown.
				return resilient.Permanent(err)
			}
			resp, err := f.attemptForward(ctx, p, method, path, rawQuery, contentType, accept, body)
			if err != nil {
				p.breaker.Record(false)
				p.failures.Add(1)
				return err
			}
			p.breaker.Record(true)
			out = resp
			return nil
		})
		if err != nil {
			// Double-wrap so callers can both match the contract error
			// and still see the cause (resilient.ErrOpen, context
			// errors) through errors.Is.
			return nil, fmt.Errorf("%w: %w", ErrPeerUnavailable, err)
		}
		return out, nil
	})
	if err != nil && !errors.Is(err, ErrPeerUnavailable) &&
		!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("%w: %w", ErrPeerUnavailable, err)
	}
	return resp, err
}

// attemptForward is one bounded try against one peer.
func (f *Fleet) attemptForward(ctx context.Context, p *Peer, method, path, rawQuery, contentType, accept string, body []byte) (*Response, error) {
	addr := p.Addr
	actx, cancel := context.WithTimeout(ctx, f.attempt)
	defer cancel()

	url := "http://" + addr + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, rd)
	if err != nil {
		return nil, resilient.Permanent(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	req.Header.Set(ForwardedHeader, f.self)
	// Deadline propagation: stamp the budget this attempt hands the
	// peer — what remains of the request deadline minus the estimated
	// transit cost, re-deducted per attempt so retries never promise
	// time that backoff already spent. A budget transit would eat
	// entirely ends the forward: the peer could only 504, while local
	// execution (no transit) may still make it.
	started := time.Now()
	if dl, ok := ctx.Deadline(); ok {
		remaining := dl.Sub(started) - p.transit()
		if remaining <= 0 {
			return nil, resilient.Permanent(fmt.Errorf(
				"peer %s: remaining budget %s cannot cover estimated transit %s",
				addr, dl.Sub(started).Round(time.Millisecond), p.transit().Round(time.Millisecond)))
		}
		ms := remaining.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}

	hr, err := f.client.Do(req)
	if err != nil {
		// Make the caller's deadline visible through the transport
		// error so Retry stops instead of burning attempts.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("peer %s: %v", addr, err)
	}
	defer hr.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hr.Body, f.maxResp+1))
	if err != nil {
		// A body that dies mid-read is the partial-response failure
		// mode; nothing was relayed yet, so it is retryable.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, fmt.Errorf("peer %s: reading response: %v", addr, err)
	}
	if int64(len(raw)) > f.maxResp {
		return nil, fmt.Errorf("peer %s: response exceeds %d bytes", addr, f.maxResp)
	}
	// Transit measurement: attempt wall-clock minus the peer's
	// self-reported execution time is the network + queueing cost this
	// peer charges, folded into the estimate the next budget stamp uses.
	if v := hr.Header.Get(DurationHeader); v != "" {
		if served, perr := strconv.ParseInt(v, 10, 64); perr == nil && served >= 0 {
			p.observeTransit(time.Since(started) - time.Duration(served)*time.Millisecond)
		}
	}
	if hr.StatusCode >= http.StatusInternalServerError {
		err := fmt.Errorf("peer %s: status %d: %s", addr, hr.StatusCode, truncateForLog(raw))
		if after := parseRetryAfter(hr.Header.Get("Retry-After")); after > 0 {
			err = resilient.WithRetryAfter(err, after)
		}
		return nil, err
	}

	out := &Response{Status: hr.StatusCode, Header: make(http.Header), Body: raw}
	if ct := hr.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	// A 201's Location names a resource (a session) that later requests
	// address by path, so it must survive the hop back to the client.
	if loc := hr.Header.Get("Location"); loc != "" {
		out.Header.Set("Location", loc)
	}
	// Relay the daemon's own X-Backbone-* metadata headers in a
	// deterministic order.
	names := make([]string, 0, len(hr.Header))
	for name := range hr.Header {
		if strings.HasPrefix(name, relayPrefix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		out.Header[name] = hr.Header.Values(name)
	}
	return out, nil
}

// parseRetryAfter reads a delay-seconds Retry-After value; HTTP-date
// forms and garbage parse as 0 (no hint).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// truncateForLog keeps error bodies loggable.
func truncateForLog(b []byte) string {
	const limit = 200
	s := strings.TrimSpace(string(b))
	if len(s) > limit {
		return s[:limit] + "..."
	}
	return s
}

// RecordFallback counts a forward abandoned in favor of local
// execution against the peer that could not serve it.
func (f *Fleet) RecordFallback(addr string) {
	if p := f.peers[addr]; p != nil {
		p.fallbacks.Add(1)
	}
}

// BreakerState exposes one peer's breaker position (tests and
// diagnostics; Closed for self and unknown addresses).
func (f *Fleet) BreakerState(addr string) resilient.BreakerState {
	if p := f.peers[addr]; p != nil {
		return p.breaker.State()
	}
	return resilient.Closed
}

// Stats snapshots every peer's counters and breaker, sorted by
// address — the daemon serves this under /statsz.
func (f *Fleet) Stats() []PeerStats {
	out := make([]PeerStats, 0, len(f.members))
	for _, addr := range f.members {
		p := f.peers[addr]
		ps := PeerStats{
			Addr:      addr,
			Self:      addr == f.self,
			Forwards:  p.forwards.Load(),
			Retries:   p.retries.Load(),
			Failures:  p.failures.Load(),
			Fallbacks: p.fallbacks.Load(),
			Breaker:   p.breaker.Stats(),
		}
		if addr != f.self {
			ps.TransitMs = float64(p.transit()) / float64(time.Millisecond)
		}
		out = append(out, ps)
	}
	return out
}
