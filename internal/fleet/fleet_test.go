package fleet

import (
	"context"
	"crypto/sha256"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/resilient"
)

// fastRetry keeps unit tests snappy: real clock, microscopic backoff.
var fastRetry = resilient.Retry{
	MaxAttempts: 3,
	BaseDelay:   time.Millisecond,
	MaxDelay:    5 * time.Millisecond,
}

// testFleet builds a two-member fleet whose only forwardable peer is
// the given backend handler, and returns the fleet plus the peer addr.
func testFleet(t *testing.T, backend http.Handler, cfg Config) (*Fleet, string) {
	t.Helper()
	ts := httptest.NewServer(backend)
	t.Cleanup(ts.Close)
	addr := ts.Listener.Addr().String()
	cfg.Self = "self.invalid:0"
	cfg.Peers = []string{addr}
	if cfg.Retry.MaxAttempts == 0 {
		cfg.Retry = fastRetry
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f, addr
}

func digestOf(body string) Digest { return sha256.Sum256([]byte(body)) }

// TestForwardRelaysResponse: a healthy forward carries the request
// through (body, query, content type, accept, hop marker) and returns
// the peer's status, X-Backbone-* headers and body.
func TestForwardRelaysResponse(t *testing.T) {
	var seen struct {
		sync.Mutex
		path, query, ct, accept, hop, body string
	}
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		seen.Lock()
		seen.path, seen.query = r.URL.Path, r.URL.RawQuery
		seen.ct, seen.accept = r.Header.Get("Content-Type"), r.Header.Get("Accept")
		seen.hop, seen.body = r.Header.Get(ForwardedHeader), string(b)
		seen.Unlock()
		w.Header().Set("X-Backbone-Method", "nc")
		w.Header().Set("X-Backbone-Cache", "hit")
		w.Header().Set("X-Internal-Secret", "do-not-relay")
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		io.WriteString(w, "a,b,1\n")
	}), Config{})

	body := "a,b,1\nb,c,2\n"
	resp, err := f.Forward(context.Background(), addr, digestOf(body),
		"/backbone", "method=nc&delta=1.64", "text/csv", "application/json", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != "a,b,1\n" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if resp.Header.Get("X-Backbone-Method") != "nc" || resp.Header.Get("X-Backbone-Cache") != "hit" {
		t.Errorf("X-Backbone headers not relayed: %v", resp.Header)
	}
	if resp.Header.Get("X-Internal-Secret") != "" {
		t.Error("non-backbone header relayed")
	}
	if resp.Header.Get("Content-Type") != "text/csv; charset=utf-8" {
		t.Errorf("content type not relayed: %v", resp.Header)
	}
	seen.Lock()
	defer seen.Unlock()
	if seen.path != "/backbone" || seen.query != "method=nc&delta=1.64" ||
		seen.ct != "text/csv" || seen.accept != "application/json" || seen.body != body {
		t.Errorf("request not carried through: path=%q query=%q ct=%q accept=%q body=%q",
			seen.path, seen.query, seen.ct, seen.accept, seen.body)
	}
	if seen.hop != f.Self() {
		t.Errorf("hop marker = %q, want self %q", seen.hop, f.Self())
	}
}

// TestForwardRetriesThenSucceeds: transient 5xx attempts are retried
// with backoff and counted.
func TestForwardRetriesThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	}), Config{})

	resp, err := f.Forward(context.Background(), addr, digestOf("x"), "/backbone", "", "text/csv", "", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ok" {
		t.Errorf("body = %q", resp.Body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("backend saw %d attempts, want 3", got)
	}
	st := f.Stats()
	var peer PeerStats
	for _, s := range st {
		if s.Addr == addr {
			peer = s
		}
	}
	if peer.Forwards != 1 || peer.Retries != 2 || peer.Failures != 2 {
		t.Errorf("peer stats = %+v, want 1 forward, 2 retries, 2 failures", peer)
	}
}

// TestForwardBreakerOpensAndFailsFast: a persistently failing peer
// trips its breaker; the next forward is rejected without touching the
// network, and the error names the open breaker.
func TestForwardBreakerOpensAndFailsFast(t *testing.T) {
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}), Config{
		Retry:   resilient.Retry{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		Breaker: resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
	})

	_, err := f.Forward(context.Background(), addr, digestOf("x"), "/backbone", "", "text/csv", "", []byte("x"))
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("backend saw %d attempts, want 2", got)
	}
	if st := f.BreakerState(addr); st != resilient.Open {
		t.Fatalf("breaker = %v after threshold failures, want open", st)
	}

	_, err = f.Forward(context.Background(), addr, digestOf("y"), "/backbone", "", "text/csv", "", []byte("y"))
	if !errors.Is(err, ErrPeerUnavailable) || !errors.Is(err, resilient.ErrOpen) {
		t.Fatalf("err = %v, want ErrPeerUnavailable wrapping ErrOpen", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("open breaker still let %d attempts through", got-2)
	}
}

// TestForwardSingleFlight: identical concurrent forwards coalesce into
// one upstream request.
func TestForwardSingleFlight(t *testing.T) {
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(100 * time.Millisecond)
		io.WriteString(w, "slow-ok")
	}), Config{})

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := f.Forward(context.Background(), addr, digestOf("same"), "/backbone", "top=5", "text/csv", "", []byte("same"))
			if err != nil {
				errs <- err
				return
			}
			if string(resp.Body) != "slow-ok" {
				errs <- errors.New("wrong body " + string(resp.Body))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("backend saw %d requests for one flight key, want 1", got)
	}
	// A different query is a different computation: no coalescing.
	if _, err := f.Forward(context.Background(), addr, digestOf("same"), "/backbone", "top=9", "text/csv", "", []byte("same")); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("distinct query coalesced (backend saw %d)", got)
	}
}

// TestForwardCallerErrorsRelayedNotRetried: a 4xx is the peer working
// correctly — relay it, spend no retries, leave the breaker closed.
func TestForwardCallerErrorsRelayedNotRetried(t *testing.T) {
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"unknown method"}`, http.StatusBadRequest)
	}), Config{})

	resp, err := f.Forward(context.Background(), addr, digestOf("x"), "/backbone", "method=bogus", "text/csv", "", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusBadRequest || calls.Load() != 1 {
		t.Errorf("status %d after %d attempts, want 400 after 1", resp.Status, calls.Load())
	}
	if st := f.BreakerState(addr); st != resilient.Closed {
		t.Errorf("breaker = %v after a 4xx, want closed", st)
	}
}

// TestForwardDeadPeerFailsOver: connection refused exhausts retries
// quickly and reports the peer unavailable.
func TestForwardDeadPeerFailsOver(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	addr := ts.Listener.Addr().String()
	ts.Close() // nothing listens there anymore
	f, err := New(Config{Self: "self.invalid:0", Peers: []string{addr}, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = f.Forward(context.Background(), addr, digestOf("x"), "/backbone", "", "text/csv", "", []byte("x"))
	if !errors.Is(err, ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("dead-peer failover took %v", elapsed)
	}
}

// TestForwardHonorsRequestDeadline: the caller's deadline caps the
// whole retry loop — no attempt starts after it.
func TestForwardHonorsRequestDeadline(t *testing.T) {
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}), Config{Retry: resilient.Retry{
		MaxAttempts: 100,
		BaseDelay:   40 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  1,
	}})

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := f.Forward(ctx, addr, digestOf("x"), "/backbone", "", "text/csv", "", []byte("x"))
	if err == nil {
		t.Fatal("forward succeeded against an always-500 peer")
	}
	if got := calls.Load(); got == 0 || got > 6 {
		t.Errorf("backend saw %d attempts under a 150ms budget with 40ms backoff", got)
	}
}

// TestForwardRetryAfterHint: a 503's Retry-After raises the backoff
// pause; with an injectable clock the exact sleep is pinned.
func TestForwardRetryAfterHint(t *testing.T) {
	clock := &recordingClock{now: time.Now()}
	var calls atomic.Int32
	f, addr := testFleet(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "saturated", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ok")
	}), Config{Retry: resilient.Retry{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
		Clock:       clock,
		Rand:        func(n int64) int64 { return 0 },
	}})

	resp, err := f.Forward(context.Background(), addr, digestOf("x"), "/backbone", "", "text/csv", "", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ok" {
		t.Errorf("body = %q", resp.Body)
	}
	sleeps := clock.sleeps()
	if len(sleeps) != 1 || sleeps[0] != 2*time.Second {
		t.Errorf("slept %v, want exactly the 2s Retry-After hint", sleeps)
	}
}

// recordingClock advances instantly and records sleeps (the fleet-side
// twin of the resilient package's fake clock).
type recordingClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func (c *recordingClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *recordingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.slept = append(c.slept, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *recordingClock) sleeps() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}
