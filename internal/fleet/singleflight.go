package fleet

import (
	"context"
	"errors"
	"sync"
)

// flightKey identifies one forwardable computation: same body digest,
// same endpoint, same query, same body interpretation (Content-Type).
// Concurrent forwards with equal keys are served by one upstream
// request between them.
type flightKey struct {
	digest      Digest
	method      string
	path        string
	query       string
	contentType string
}

// errFlightPanicked is what waiters observe when a leader panicked;
// they retry rather than inherit a result that never materialized.
var errFlightPanicked = errors.New("fleet: forward panicked")

type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// flightGroup deduplicates in-flight forwards, mirroring the retry
// semantics of internal/cache's single-flight: a leader's failure —
// possibly caused by its own context — never poisons waiters, who loop
// around and elect a new leader unless their own context is done.
// Nothing is cached: response memoization belongs to the owning peer's
// content-addressed caches, not the forwarding hop.
type flightGroup struct {
	mu    sync.Mutex
	calls map[flightKey]*flightCall
}

// do returns fn's response, either by running it as the leader or by
// joining an identical in-flight call. coalesced reports that this
// call did no upstream work itself.
func (g *flightGroup) do(ctx context.Context, key flightKey, fn func() (*Response, error)) (resp *Response, coalesced bool, err error) {
	for {
		g.mu.Lock()
		if g.calls == nil {
			g.calls = make(map[flightKey]*flightCall)
		}
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					return c.resp, true, nil
				}
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, false, ctxErr
				}
				continue // leader failed; try to lead ourselves
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()

		g.lead(key, c, fn)
		return c.resp, false, c.err
	}
}

// lead runs fn as the flight's leader; the deferred cleanup runs even
// if fn panics, so the key is never wedged and the panic keeps
// unwinding to the caller.
func (g *flightGroup) lead(key flightKey, c *flightCall, fn func() (*Response, error)) {
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightPanicked
		}
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.resp, c.err = fn()
	completed = true
}
