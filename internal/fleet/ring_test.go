package fleet

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
)

func randomDigests(n int, seed int64) []Digest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Digest, n)
	for i := range out {
		var body [16]byte
		rng.Read(body[:])
		out[i] = sha256.Sum256(body[:])
	}
	return out
}

// TestRingDeterministicAcrossOrderings: ownership is a pure function
// of (membership set, digest) — peer list order must not matter, or
// differently-configured peers would route the same body differently.
func TestRingDeterministicAcrossOrderings(t *testing.T) {
	a := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	b := []string{"10.0.0.3:8080", "10.0.0.1:8080", "10.0.0.2:8080"}
	for _, d := range randomDigests(1000, 1) {
		if oa, ob := owner(a, d), owner(b, d); oa != ob {
			t.Fatalf("digest %x: owner %q under one ordering, %q under another", d[:4], oa, ob)
		}
	}
}

// TestRingBalance: each of 3 peers owns a healthy share of random
// digests (loose bound: at least 15% each over 30k samples).
func TestRingBalance(t *testing.T) {
	peers := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	counts := map[string]int{}
	digests := randomDigests(30000, 2)
	for _, d := range digests {
		counts[owner(peers, d)]++
	}
	for _, p := range peers {
		if c := counts[p]; c < len(digests)*15/100 {
			t.Errorf("peer %s owns %d of %d digests — ring badly unbalanced", p, c, len(digests))
		}
	}
}

// TestRingMinimalDisruption is the defining rendezvous property: when
// one peer leaves, digests owned by the survivors keep their owner —
// only the departed peer's share moves.
func TestRingMinimalDisruption(t *testing.T) {
	full := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080"}
	without3 := full[:2]
	moved := 0
	digests := randomDigests(5000, 3)
	for _, d := range digests {
		before := owner(full, d)
		after := owner(without3, d)
		if before != "10.0.0.3:8080" && before != after {
			t.Fatalf("digest %x moved %q -> %q though its owner survived", d[:4], before, after)
		}
		if before != after {
			moved++
		}
	}
	if moved == 0 || moved > len(digests)/2 {
		t.Errorf("%d of %d digests moved on one peer leaving; want roughly a third", moved, len(digests))
	}
}

// TestNewValidation: membership rules.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Peers: []string{"a:1", "b:1"}}); err == nil {
		t.Error("missing self accepted")
	}
	if _, err := New(Config{Self: "a:1", Peers: []string{"a:1"}}); err == nil {
		t.Error("single-member fleet accepted")
	}
	f, err := New(Config{Self: "a:1", Peers: []string{"b:1", "b:1", " a:1 ", "c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	got := f.Members()
	want := []string{"a:1", "b:1", "c:1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("members = %v, want deduped sorted %v", got, want)
	}
	// Self omitted from the peer list is added.
	f, err = New(Config{Self: "d:1", Peers: []string{"a:1", "b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Members()) != 3 {
		t.Errorf("members = %v, want self appended", f.Members())
	}
}
