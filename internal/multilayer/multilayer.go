// Package multilayer implements the multilayer extension of the
// Noise-Corrected backbone that the paper names as future work
// (Section VII): "we can extend the NC methodology to consider
// multilayer networks, where nodes in different layers are coupled
// together and where these couplings influence the backbone structure."
//
// A Multilayer holds several weighted graphs (layers) over one shared
// node set — e.g. the same countries connected by trade, flights and
// migration. The coupled NC scorer keeps each layer's bilateral null
// model but blends its Beta prior for P_ij with the relation's observed
// frequency in the *other* layers, under a coupling strength ρ ∈ [0,1]:
//
//	μ_l(i,j) = (1-ρ)·μ_hypergeometric + ρ·P̂_pool(i,j)
//
// where P̂_pool is the pooled cross-layer frequency of the pair. At
// ρ = 0 every layer is backboned independently (exactly core.Scores);
// as ρ grows, an edge that all other layers support becomes expected —
// it now takes an extra-strong weight to be surprising — while an edge
// unique to its layer stays unanticipated and is preferentially kept.
// The coupled backbone therefore highlights what is *specific* to each
// layer, which is the analytically useful notion of a multilayer
// backbone.
package multilayer

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Multilayer is a set of layers over a common node set.
type Multilayer struct {
	names  []string
	layers []*graph.Graph
	nodes  int
}

// New creates an empty multilayer network with n shared nodes.
func New(n int) *Multilayer { return &Multilayer{nodes: n} }

// NumNodes returns the shared node-set size.
func (m *Multilayer) NumNodes() int { return m.nodes }

// NumLayers returns the number of layers.
func (m *Multilayer) NumLayers() int { return len(m.layers) }

// AddLayer appends a layer. Every layer must cover the shared node set
// exactly; directedness may vary per layer.
func (m *Multilayer) AddLayer(name string, g *graph.Graph) error {
	if g.NumNodes() != m.nodes {
		return fmt.Errorf("multilayer: layer %q has %d nodes, want %d", name, g.NumNodes(), m.nodes)
	}
	m.names = append(m.names, name)
	m.layers = append(m.layers, g)
	return nil
}

// Layer returns the i-th layer and its name.
func (m *Multilayer) Layer(i int) (string, *graph.Graph) { return m.names[i], m.layers[i] }

// LayerByName returns the named layer.
func (m *Multilayer) LayerByName(name string) (*graph.Graph, error) {
	for i, n := range m.names {
		if n == name {
			return m.layers[i], nil
		}
	}
	return nil, fmt.Errorf("multilayer: no layer %q", name)
}

// CoupledScores computes NC significance tables for every layer with
// inter-layer coupling strength rho in [0, 1]. rho = 0 reproduces the
// single-layer NC scores exactly.
//
//lint:ctxflow-ok layer-count-bounded scoring fan-out; the pipeline entry points own cancellation
func (m *Multilayer) CoupledScores(rho float64) ([]*filter.Scores, error) {
	if len(m.layers) == 0 {
		return nil, fmt.Errorf("multilayer: no layers")
	}
	if rho < 0 || rho > 1 {
		return nil, fmt.Errorf("multilayer: coupling rho = %v outside [0,1]", rho)
	}
	// Pooled pair frequencies per layer: for layer l, the share of the
	// other layers' total weight carried by each pair. Directed pairs
	// are pooled directionally; an undirected layer contributes its
	// weight to both directions. The per-pair weights are read straight
	// off each layer's CSR adjacency (binary search in the smaller
	// endpoint's sorted arc range) instead of materializing a
	// map[EdgeKey]float64 per layer — graph.Weight already implements
	// exactly the directional semantics the maps encoded, which the
	// multilayer oracle test pins.
	totals := make([]float64, len(m.layers))
	for li, g := range m.layers {
		totals[li] = g.TotalWeight()
	}

	out := make([]*filter.Scores, len(m.layers))
	for li, g := range m.layers {
		s := &filter.Scores{
			G:      g,
			Score:  make([]float64, g.NumEdges()),
			Method: fmt.Sprintf("nc-multilayer(%s)", m.names[li]),
			Aux: map[string][]float64{
				"nc_score": make([]float64, g.NumEdges()),
				"sdev":     make([]float64, g.NumEdges()),
			},
		}
		n := g.TotalWeight()
		var poolTotal float64
		for lj := range m.layers {
			if lj != li {
				poolTotal += totals[lj]
			}
		}
		for id, e := range g.Edges() {
			var poolW float64
			for lj, other := range m.layers {
				if lj != li {
					w, _ := other.Weight(int(e.Src), int(e.Dst))
					poolW += w
				}
			}
			var pPool float64
			if poolTotal > 0 {
				pPool = poolW / poolTotal
			}
			es := coupledEdge(e.Weight,
				g.OutStrength(int(e.Src)), g.InStrength(int(e.Dst)), n,
				rho, pPool, poolTotal > 0)
			s.Aux["nc_score"][id] = es.Score
			s.Aux["sdev"][id] = es.Sdev
			switch {
			case es.Sdev > 0:
				s.Score[id] = es.Score / es.Sdev
			case es.Score > 0:
				s.Score[id] = math.Inf(1)
			default:
				s.Score[id] = math.Inf(-1)
			}
		}
		out[li] = s
	}
	return out, nil
}

// coupledEdge evaluates one edge under the blended prior. With
// rho == 0 or no pooling information it defers to core.ComputeEdge.
func coupledEdge(nij, ni, nj, n, rho, pPool float64, havePool bool) core.EdgeStats {
	if rho == 0 || !havePool {
		return core.ComputeEdge(nij, ni, nj, n)
	}
	var es core.EdgeStats
	if ni <= 0 || nj <= 0 || n <= 0 {
		return es
	}
	es.Expected = ni * nj / n
	kappa := n / (ni * nj)
	es.Lift = nij / es.Expected
	es.Score = (kappa*nij - 1) / (kappa*nij + 1)

	// Blend the hypergeometric prior mean with the pooled cross-layer
	// frequency; keep the prior's relative precision so the blend only
	// moves the center of mass, not the confidence.
	muH := ni * nj / (n * n)
	sigma2H := ni * nj * (n - ni) * (n - nj) / (n * n * n * n * (n - 1))
	mu := (1-rho)*muH + rho*pPool
	post := nij / n
	if sigma2H > 0 && mu > 0 && mu < 1 {
		// Rescale the variance to preserve the coefficient of variation
		// of the uncoupled prior.
		sigma2 := sigma2H * (mu * mu) / (muH * muH)
		if sigma2 >= mu*(1-mu) {
			sigma2 = 0.99 * mu * (1 - mu)
		}
		alpha0, beta0 := stats.BetaFromMoments(mu, sigma2)
		if alpha0 > 0 && beta0 > 0 {
			post = (nij + alpha0) / (n + alpha0 + beta0)
		}
	}
	es.PosteriorP = post
	varNij := n * post * (1 - post)
	dKappa := 1/(ni*nj) - n*(ni+nj)/((ni*nj)*(ni*nj))
	denom := kappa*nij + 1
	deriv := 2 * (kappa + nij*dKappa) / (denom * denom)
	es.Variance = varNij * deriv * deriv
	es.Sdev = math.Sqrt(es.Variance)

	// The coupling also recenters the score: measure the lift against
	// the blended expectation rather than the within-layer one, so an
	// edge fully anticipated by the other layers scores near zero.
	expBlend := (1-rho)*es.Expected + rho*pPool*n
	if expBlend > 0 {
		liftBlend := nij / expBlend
		es.Score = (liftBlend - 1) / (liftBlend + 1)
	}
	return es
}

// CoupledBackbones extracts one backbone per layer at significance
// delta under coupling rho.
func (m *Multilayer) CoupledBackbones(rho, delta float64) ([]*graph.Graph, error) {
	scores, err := m.CoupledScores(rho)
	if err != nil {
		return nil, err
	}
	out := make([]*graph.Graph, len(scores))
	for i, s := range scores {
		out[i] = s.Threshold(delta)
	}
	return out, nil
}
