package multilayer

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// threeLayers builds a 20-node multilayer network where pair (0,1) is
// strong in every layer (a cross-layer relation) and pair (2,3) is
// strong only in layer 0 (layer-specific), against a uniform background.
func threeLayers(t *testing.T) *Multilayer {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	m := New(20)
	for l := 0; l < 3; l++ {
		b := graph.NewBuilder(false)
		b.AddNodes(20)
		for i := 0; i < 20; i++ {
			for j := i + 1; j < 20; j++ {
				w := 5 + float64(stats.SamplePoisson(rng, 5))
				if i == 0 && j == 1 {
					w += 60 // strong everywhere
				}
				if l == 0 && i == 2 && j == 3 {
					w += 60 // strong only in layer 0
				}
				b.MustAddEdge(i, j, w)
			}
		}
		if err := m.AddLayer([]string{"trade", "flight", "migration"}[l], b.Build()); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func edgeIndex(t *testing.T, g *graph.Graph, u, v int32) int {
	t.Helper()
	for i, e := range g.Edges() {
		if (e.Src == u && e.Dst == v) || (e.Src == v && e.Dst == u) {
			return i
		}
	}
	t.Fatalf("edge %d-%d not found", u, v)
	return -1
}

func TestZeroCouplingMatchesSingleLayerNC(t *testing.T) {
	m := threeLayers(t)
	scores, err := m.CoupledScores(0)
	if err != nil {
		t.Fatal(err)
	}
	for li := 0; li < m.NumLayers(); li++ {
		_, g := m.Layer(li)
		single, err := core.New().Scores(g)
		if err != nil {
			t.Fatal(err)
		}
		for i := range single.Score {
			if math.Abs(single.Score[i]-scores[li].Score[i]) > 1e-12 {
				t.Fatalf("layer %d edge %d: coupled(rho=0) %v != single %v",
					li, i, scores[li].Score[i], single.Score[i])
			}
		}
	}
}

func TestCouplingDiscountsCrossLayerRelations(t *testing.T) {
	m := threeLayers(t)
	uncoupled, err := m.CoupledScores(0)
	if err != nil {
		t.Fatal(err)
	}
	coupled, err := m.CoupledScores(0.7)
	if err != nil {
		t.Fatal(err)
	}
	_, g0 := m.Layer(0)
	shared := edgeIndex(t, g0, 0, 1)   // strong in all layers
	specific := edgeIndex(t, g0, 2, 3) // strong only here

	// Uncoupled, both planted edges are comparably significant.
	if uncoupled[0].Score[shared] < 2 || uncoupled[0].Score[specific] < 2 {
		t.Fatalf("planted edges not significant uncoupled: %v, %v",
			uncoupled[0].Score[shared], uncoupled[0].Score[specific])
	}
	// Coupled: the cross-layer relation becomes expected — its score
	// must drop well below the layer-specific one.
	if coupled[0].Score[shared] >= coupled[0].Score[specific] {
		t.Errorf("coupling did not discount the shared relation: shared %v >= specific %v",
			coupled[0].Score[shared], coupled[0].Score[specific])
	}
	if coupled[0].Score[shared] >= uncoupled[0].Score[shared] {
		t.Errorf("shared-relation score did not drop under coupling: %v -> %v",
			uncoupled[0].Score[shared], coupled[0].Score[shared])
	}
	// The layer-specific edge must stay clearly significant.
	if coupled[0].Score[specific] < 2 {
		t.Errorf("layer-specific edge lost under coupling: %v", coupled[0].Score[specific])
	}
}

func TestCoupledBackbones(t *testing.T) {
	m := threeLayers(t)
	bbs, err := m.CoupledBackbones(0.7, 2.32)
	if err != nil {
		t.Fatal(err)
	}
	if len(bbs) != 3 {
		t.Fatalf("backbones = %d", len(bbs))
	}
	_, g0 := m.Layer(0)
	// The layer-specific planted edge survives in its layer's backbone.
	if _, ok := bbs[0].Weight(2, 3); !ok {
		t.Error("layer-specific edge missing from coupled backbone")
	}
	if bbs[0].NumNodes() != g0.NumNodes() {
		t.Error("node set changed")
	}
}

func TestMultilayerValidation(t *testing.T) {
	m := New(5)
	small := graph.NewBuilder(false)
	small.AddNodes(3)
	if err := m.AddLayer("bad", small.Build()); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := m.CoupledScores(0.5); err == nil {
		t.Error("empty multilayer accepted")
	}
	ok := graph.NewBuilder(false)
	ok.AddNodes(5)
	ok.MustAddEdge(0, 1, 2)
	if err := m.AddLayer("l0", ok.Build()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CoupledScores(1.5); err == nil {
		t.Error("rho > 1 accepted")
	}
	if _, err := m.CoupledScores(-0.1); err == nil {
		t.Error("rho < 0 accepted")
	}
	if _, err := m.LayerByName("l0"); err != nil {
		t.Error(err)
	}
	if _, err := m.LayerByName("nope"); err == nil {
		t.Error("unknown layer accepted")
	}
	if m.NumNodes() != 5 || m.NumLayers() != 1 {
		t.Error("counts wrong")
	}
}

func TestSingleLayerPoolFallsBack(t *testing.T) {
	// One layer only: no pooling information exists, so any rho must
	// reproduce the single-layer scores.
	m := New(6)
	b := graph.NewBuilder(true)
	b.AddNodes(6)
	b.MustAddEdge(0, 1, 5)
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(2, 0, 1)
	g := b.Build()
	if err := m.AddLayer("only", g); err != nil {
		t.Fatal(err)
	}
	coupled, err := m.CoupledScores(0.9)
	if err != nil {
		t.Fatal(err)
	}
	single, err := core.New().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Score {
		if math.Abs(single.Score[i]-coupled[0].Score[i]) > 1e-12 {
			t.Errorf("edge %d: single-layer fallback broken", i)
		}
	}
}

// TestCoupledPoolMatchesMapOracle pins the CSR Weight-lookup pooling to
// the map[EdgeKey] accumulation it replaced: coupled scores over random
// directed and undirected layer stacks must come out identical to a
// run against map-materialized pooled weights.
func TestCoupledPoolMatchesMapOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		m := New(n)
		for li := 0; li < 3; li++ {
			b := graph.NewBuilder(li%2 == 0)
			b.AddNodes(n)
			for e := 0; e < 3*n; e++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					b.MustAddEdge(u, v, float64(1+rng.Intn(9)))
				}
			}
			if err := m.AddLayer(fmt.Sprintf("l%d", li), b.Build()); err != nil {
				t.Fatal(err)
			}
		}
		rho := rng.Float64()
		coupled, err := m.CoupledScores(rho)
		if err != nil {
			t.Fatal(err)
		}
		// Map-based oracle pooling, as the pre-CSR implementation did it:
		// directed pairs pooled directionally, undirected layers feeding
		// both directions.
		weights := make([]map[graph.EdgeKey]float64, m.NumLayers())
		for li := 0; li < m.NumLayers(); li++ {
			_, g := m.Layer(li)
			weights[li] = map[graph.EdgeKey]float64{}
			for _, e := range g.Edges() {
				weights[li][graph.EdgeKey{U: e.Src, V: e.Dst}] += e.Weight
				if !g.Directed() {
					weights[li][graph.EdgeKey{U: e.Dst, V: e.Src}] += e.Weight
				}
			}
		}
		for li := 0; li < m.NumLayers(); li++ {
			_, g := m.Layer(li)
			for id, e := range g.Edges() {
				var want float64
				for lj := 0; lj < m.NumLayers(); lj++ {
					if lj != li {
						want += weights[lj][graph.EdgeKey{U: e.Src, V: e.Dst}]
					}
				}
				var got float64
				for lj := 0; lj < m.NumLayers(); lj++ {
					if lj != li {
						_, other := m.Layer(lj)
						w, _ := other.Weight(int(e.Src), int(e.Dst))
						got += w
					}
				}
				if got != want {
					t.Fatalf("seed %d layer %d edge %d: pooled weight %v, oracle %v", seed, li, id, got, want)
				}
				if s := coupled[li].Score[id]; s != s && want == 0 {
					// NaN scores only legal when the edge has no strength
					// support at all; flag unexpected ones.
					t.Errorf("seed %d layer %d edge %d: NaN coupled score", seed, li, id)
				}
			}
		}
	}
}
