package world

import (
	"math"

	"repro/internal/stats"
)

// ECI computes the Economic Complexity Index of every country from a
// binarized RCA export matrix, using the method of reflections of
// Hidalgo & Hausmann (2009) as popularized by the Atlas of Economic
// Complexity [17] — the source the paper takes its complexity predictor
// from. Iterating
//
//	k_c,N = (1/k_c,0) Σ_p M_cp k_p,N-1
//	k_p,N = (1/k_p,0) Σ_c M_cp k_c,N-1
//
// from diversity k_c,0 and ubiquity k_p,0 converges (up to affine
// rescaling) to the complexity ranking; the returned index is the
// z-scored 18th country reflection.
func ECI(m [][]bool) []float64 {
	n := len(m)
	if n == 0 {
		return nil
	}
	np := len(m[0])
	kc := make([]float64, n)
	kp := make([]float64, np)
	for c := 0; c < n; c++ {
		for p := 0; p < np; p++ {
			if m[c][p] {
				kc[c]++
				kp[p]++
			}
		}
	}
	kc0 := append([]float64(nil), kc...)
	kp0 := append([]float64(nil), kp...)
	// 18 reflections (an even number returns to country space with the
	// complexity interpretation).
	curC := append([]float64(nil), kc...)
	curP := append([]float64(nil), kp...)
	for iter := 0; iter < 9; iter++ {
		nextC := make([]float64, n)
		for c := 0; c < n; c++ {
			if kc0[c] == 0 {
				continue
			}
			var s float64
			for p := 0; p < np; p++ {
				if m[c][p] {
					s += curP[p]
				}
			}
			nextC[c] = s / kc0[c]
		}
		nextP := make([]float64, np)
		for p := 0; p < np; p++ {
			if kp0[p] == 0 {
				continue
			}
			var s float64
			for c := 0; c < n; c++ {
				if m[c][p] {
					s += curC[c]
				}
			}
			nextP[p] = s / kp0[p]
		}
		curC, curP = nextC, nextP
	}
	// The reflections define complexity only up to sign (odd country
	// reflections average product ubiquity and come out inverted);
	// follow the standard convention of orienting the index so that it
	// correlates positively with diversity.
	if stats.Pearson(curC, kc0) < 0 {
		for c := range curC {
			curC[c] = -curC[c]
		}
	}
	// Z-score.
	mean := stats.Mean(curC)
	sd := stats.StdDev(curC)
	out := make([]float64, n)
	for c := range out {
		if sd > 0 && !math.IsNaN(sd) {
			out[c] = (curC[c] - mean) / sd
		}
	}
	return out
}

// MeasuredECI computes the ECI from the world's latent export matrix
// after RCA binarization — the "observed" complexity used as a
// regression predictor for the Country Space network.
func (w *World) MeasuredECI() []float64 {
	return ECI(RCA(w.Exports))
}
