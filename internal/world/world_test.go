package world

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func smallConfig() Config {
	return Config{Seed: 99, Countries: 60, Products: 150, Years: 3}
}

func TestWorldDeterminism(t *testing.T) {
	w1 := New(smallConfig())
	w2 := New(smallConfig())
	for i := range w1.Countries {
		if w1.Countries[i] != w2.Countries[i] {
			t.Fatalf("country %d differs between identically-seeded worlds", i)
		}
	}
	g1 := w1.Trade().Latest()
	g2 := w2.Trade().Latest()
	if g1.NumEdges() != g2.NumEdges() || g1.TotalWeight() != g2.TotalWeight() {
		t.Error("Trade network not deterministic")
	}
}

func TestCountryAttributes(t *testing.T) {
	w := New(smallConfig())
	if len(w.Countries) != 60 {
		t.Fatalf("countries = %d", len(w.Countries))
	}
	for i, c := range w.Countries {
		if c.Population <= 0 {
			t.Errorf("country %d population %v", i, c.Population)
		}
		if c.Capability < 0 || c.Capability > 1 {
			t.Errorf("capability out of range: %v", c.Capability)
		}
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Errorf("bad coordinates: %v %v", c.Lat, c.Lon)
		}
		if c.Name == "" {
			t.Error("empty country name")
		}
	}
	// Distance matrix: symmetric, zero diagonal, triangle-inequality-ish.
	for i := 0; i < 60; i++ {
		if w.Dist[i][i] != 0 {
			t.Errorf("Dist[%d][%d] = %v", i, i, w.Dist[i][i])
		}
		for j := 0; j < 60; j++ {
			if w.Dist[i][j] != w.Dist[j][i] {
				t.Errorf("distance asymmetry at %d,%d", i, j)
			}
			if i != j && (w.Dist[i][j] <= 0 || w.Dist[i][j] > 20100) {
				t.Errorf("distance %v out of Earth's range", w.Dist[i][j])
			}
		}
	}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Antipodal points: half the Earth's circumference ~ 20015 km.
	d := haversineKm(0, 0, 0, 180)
	if math.Abs(d-20015) > 25 {
		t.Errorf("antipodal distance = %v", d)
	}
	if haversineKm(45, 45, 45, 45) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestSixDatasets(t *testing.T) {
	w := New(smallConfig())
	dss := w.AllDatasets()
	if len(dss) != 6 {
		t.Fatalf("datasets = %d", len(dss))
	}
	wantNames := []string{"Business", "Country Space", "Flight", "Migration", "Ownership", "Trade"}
	wantDirected := []bool{true, false, true, true, true, true}
	for k, ds := range dss {
		if ds.Name != wantNames[k] {
			t.Errorf("dataset %d name %q, want %q", k, ds.Name, wantNames[k])
		}
		if len(ds.Years) != 3 {
			t.Errorf("%s: years = %d, want 3", ds.Name, len(ds.Years))
		}
		for _, g := range ds.Years {
			if g.Directed() != wantDirected[k] {
				t.Errorf("%s directedness wrong", ds.Name)
			}
			if g.NumNodes() != 60 {
				t.Errorf("%s nodes = %d", ds.Name, g.NumNodes())
			}
			if g.NumEdges() == 0 {
				t.Errorf("%s has no edges", ds.Name)
			}
		}
	}
}

func TestPureSinksMakeDSInfeasible(t *testing.T) {
	w := New(smallConfig())
	for _, name := range []string{"Business", "Flight", "Ownership"} {
		ds, err := w.DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := ds.Latest()
		found := false
		for v := 0; v < g.NumNodes(); v++ {
			if g.InStrength(v) > 0 && g.OutStrength(v) == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: no pure sink — DS would be feasible, paper says n/a", name)
		}
	}
}

func TestBroadWeightDistribution(t *testing.T) {
	w := New(smallConfig())
	g := w.Trade().Latest()
	weights := make([]float64, 0, g.NumEdges())
	for _, e := range g.Edges() {
		weights = append(weights, e.Weight)
	}
	lo, hi := stats.MinMax(weights)
	if hi/lo < 1e4 {
		t.Errorf("Trade weights span %.1f orders of magnitude, want >= 4", math.Log10(hi/lo))
	}
	// Ownership: median small, top 1% much larger (paper: 1.5 vs 50k).
	g = w.Ownership().Latest()
	weights = weights[:0]
	for _, e := range g.Edges() {
		weights = append(weights, e.Weight)
	}
	med := stats.Median(weights)
	p99 := stats.Quantile(weights, 0.99)
	if p99/med < 50 {
		t.Errorf("Ownership: p99/median = %v, want heavy tail", p99/med)
	}
}

func TestLocalWeightCorrelation(t *testing.T) {
	// Fig 6 property: edge weight correlates with the average weight of
	// neighboring edges (log-log Pearson .42-.75 in the paper).
	w := New(smallConfig())
	for _, ds := range []*Dataset{w.Flight(), w.CountrySpace()} {
		g := ds.Latest()
		var own, neigh []float64
		for _, e := range g.Edges() {
			var sum float64
			var cnt int
			for _, a := range g.Out(int(e.Src)) {
				sum += a.Weight
				cnt++
			}
			for _, a := range g.In(int(e.Dst)) {
				sum += a.Weight
				cnt++
			}
			sum -= 2 * e.Weight // exclude the edge itself (counted twice)
			cnt -= 2
			if cnt > 0 {
				own = append(own, e.Weight)
				neigh = append(neigh, sum/float64(cnt))
			}
		}
		r := stats.LogLogPearson(own, neigh)
		if r < 0.2 {
			t.Errorf("%s: local weight correlation = %v, want strong positive", ds.Name, r)
		}
	}
}

func TestRCABinarization(t *testing.T) {
	// 2x2: country 0 specialized in product 0, country 1 in product 1.
	x := [][]float64{{8, 2}, {2, 8}}
	rca := RCA(x)
	if !rca[0][0] || rca[0][1] || rca[1][0] || !rca[1][1] {
		t.Errorf("RCA = %v", rca)
	}
	// Degenerate inputs survive.
	if RCA(nil) != nil {
		t.Error("nil input should give nil")
	}
	zero := RCA([][]float64{{0, 0}, {0, 0}})
	if zero[0][0] || zero[1][1] {
		t.Error("all-zero matrix should have no RCA")
	}
}

func TestECIRanksCapability(t *testing.T) {
	w := New(smallConfig())
	eci := w.MeasuredECI()
	if len(eci) != 60 {
		t.Fatalf("eci length %d", len(eci))
	}
	caps := make([]float64, len(eci))
	for i, c := range w.Countries {
		caps[i] = c.Capability
	}
	r := stats.Spearman(caps, eci)
	if r < 0.6 {
		t.Errorf("ECI vs latent capability Spearman = %v, want strong", r)
	}
	// Z-scored: mean ~0, sd ~1.
	if m := stats.Mean(eci); math.Abs(m) > 1e-9 {
		t.Errorf("ECI mean = %v", m)
	}
}

func TestPredictorsDesign(t *testing.T) {
	w := New(smallConfig())
	p := w.Predictors()
	for _, name := range []string{"Business", "Country Space", "Flight", "Migration", "Ownership", "Trade"} {
		ds, err := w.DatasetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		edges := ds.Latest().Edges()
		y, xs, err := p.Design(name, edges)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(y) != len(edges) {
			t.Fatalf("%s: y rows %d", name, len(y))
		}
		cols := p.Columns(name)
		if len(xs) != len(cols) {
			t.Errorf("%s: %d predictor columns, %d names", name, len(xs), len(cols))
		}
		for _, col := range xs {
			if len(col) != len(edges) {
				t.Errorf("%s: ragged design", name)
			}
		}
	}
	if _, err := p.Row("Nonsense", 0, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, _, err := p.Design("Trade", nil); err == nil {
		t.Error("empty edges accepted")
	}
	if p.Columns("Nonsense") != nil {
		t.Error("unknown dataset columns should be nil")
	}
}

func TestGravityPredictsFlows(t *testing.T) {
	// Sanity: the Flight network must be predictable from its own
	// gravity covariates — this is what Table II's R² ratios rest on.
	w := New(smallConfig())
	p := w.Predictors()
	g := w.Flight().Latest()
	y, xs, err := p.Design("Flight", g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	res, err := stats.OLS(y, xs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.R2 < 0.15 {
		t.Errorf("gravity R² = %v, want meaningful fit", res.R2)
	}
	// Distance coefficient must be negative, population positive.
	if res.Coef[1] >= 0 {
		t.Errorf("distance coefficient = %v, want negative", res.Coef[1])
	}
	if res.Coef[2] <= 0 || res.Coef[3] <= 0 {
		t.Errorf("population coefficients = %v, %v, want positive", res.Coef[2], res.Coef[3])
	}
}

func TestDatasetByNameAliases(t *testing.T) {
	w := New(smallConfig())
	for _, alias := range []string{"cs", "countryspace", "Country Space"} {
		ds, err := w.DatasetByName(alias)
		if err != nil || ds.Name != "Country Space" {
			t.Errorf("alias %q: %v, %v", alias, ds, err)
		}
	}
	if _, err := w.DatasetByName("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDefaultConfigFill(t *testing.T) {
	var c Config
	c.fill()
	if c.Countries != 180 || c.Products != 600 || c.Years != 4 {
		t.Errorf("fill defaults: %+v", c)
	}
	d := DefaultConfig()
	if d.Countries != 180 || d.Seed == 0 {
		t.Errorf("DefaultConfig: %+v", d)
	}
}
