package world

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Predictors supplies the per-network regression variables of the
// paper's Quality experiment (Table II):
//
//	Business       distance, populations, trade volume
//	Country Space  distance, economic complexity of the two countries
//	Flight         distance, populations (a pure gravity model)
//	Migration      distance, populations, common language, colonial tie
//	Ownership      distance, FDI
//	Trade          distance, populations, business travel
type Predictors struct {
	w     *World
	eci   []float64
	trade map[graph.EdgeKey]float64
	bus   map[graph.EdgeKey]float64
}

// Predictors builds the predictor tables. The trade and business-travel
// predictors come from the latest observation year of the corresponding
// synthetic networks, mirroring how the paper predicts one network from
// another.
func (w *World) Predictors() *Predictors {
	return &Predictors{
		w:     w,
		eci:   w.MeasuredECI(),
		trade: w.Trade().Latest().WeightMap(),
		bus:   w.Business().Latest().WeightMap(),
	}
}

// Row computes the predictor vector for the pair (i, j) of the named
// dataset. Columns are in a fixed per-dataset order.
func (p *Predictors) Row(dataset string, i, j int) ([]float64, error) {
	logDist := math.Log(p.w.Dist[i][j] + 1)
	logPopI := math.Log(p.w.Countries[i].Population)
	logPopJ := math.Log(p.w.Countries[j].Population)
	key := graph.EdgeKey{U: int32(i), V: int32(j)}
	switch dataset {
	case "Business":
		return []float64{logDist, logPopI, logPopJ, math.Log1p(p.trade[key])}, nil
	case "Country Space":
		// Symmetric complexity predictors for an undirected network.
		sum := p.eci[i] + p.eci[j]
		diff := math.Abs(p.eci[i] - p.eci[j])
		return []float64{logDist, sum, -diff}, nil
	case "Flight":
		return []float64{logDist, logPopI, logPopJ}, nil
	case "Migration":
		lang, tie := 0.0, 0.0
		if p.w.SameLanguage[i][j] {
			lang = 1
		}
		if p.w.ColonialTie[i][j] {
			tie = 1
		}
		return []float64{logDist, logPopI, logPopJ, lang, tie}, nil
	case "Ownership":
		return []float64{logDist, math.Log1p(p.w.fdi[i][j])}, nil
	case "Trade":
		return []float64{logDist, logPopI, logPopJ, math.Log1p(p.bus[key])}, nil
	}
	return nil, fmt.Errorf("world: no predictor model for dataset %q", dataset)
}

// Columns returns the predictor names for the named dataset.
func (p *Predictors) Columns(dataset string) []string {
	switch dataset {
	case "Business":
		return []string{"log dist", "log pop_i", "log pop_j", "log trade"}
	case "Country Space":
		return []string{"log dist", "eci sum", "-|eci diff|"}
	case "Flight":
		return []string{"log dist", "log pop_i", "log pop_j"}
	case "Migration":
		return []string{"log dist", "log pop_i", "log pop_j", "same lang", "colonial"}
	case "Ownership":
		return []string{"log dist", "log fdi"}
	case "Trade":
		return []string{"log dist", "log pop_i", "log pop_j", "log business"}
	}
	return nil
}

// Design assembles the OLS design for a set of edges of the named
// dataset: y = log(N_ij + 1) and one column slice per predictor.
func (p *Predictors) Design(dataset string, edges []graph.Edge) (y []float64, xs [][]float64, err error) {
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("world: empty edge set for %s design", dataset)
	}
	first, err := p.Row(dataset, int(edges[0].Src), int(edges[0].Dst))
	if err != nil {
		return nil, nil, err
	}
	k := len(first)
	y = make([]float64, len(edges))
	xs = make([][]float64, k)
	for c := range xs {
		xs[c] = make([]float64, len(edges))
	}
	for r, e := range edges {
		row, err := p.Row(dataset, int(e.Src), int(e.Dst))
		if err != nil {
			return nil, nil, err
		}
		y[r] = math.Log1p(e.Weight)
		for c := range row {
			xs[c][r] = row[c]
		}
	}
	return y, xs, nil
}
