package world

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stats"
)

// Dataset is one of the six country networks, observed over several
// years on an identical node set.
type Dataset struct {
	// Name is the paper's network name ("Business", "Trade", ...).
	Name string
	// Directed reports edge orientation.
	Directed bool
	// Kind describes the relationship type: "flow", "stock" or
	// "co-occurrence", following the paper's taxonomy.
	Kind string
	// Years holds one graph per observation year.
	Years []*graph.Graph
	// Spurious marks, per year, the edge keys that contain a measurement
	// artifact (possibly on top of a true interaction). Ground truth for
	// the noise-retention diagnostics; real pipelines do not observe it.
	Spurious []map[graph.EdgeKey]bool
}

// Latest returns the most recent observation.
func (d *Dataset) Latest() *graph.Graph { return d.Years[len(d.Years)-1] }

// gravitySpec describes one latent gravity-model network.
type gravitySpec struct {
	name string
	kind string
	// scale multiplies the whole intensity surface.
	scale float64
	// popExpOrigin/popExpDest are gravity elasticities.
	popExpOrigin, popExpDest float64
	// distExp is the (positive) distance decay exponent.
	distExp float64
	// multiplier injects network-specific pair effects.
	multiplier func(w *World, i, j int) float64
	// yearNoise is the std-dev of the per-year log-normal drift on the
	// latent intensity. The NC null model only accounts for counting
	// noise, so drift lowers the predicted-observed variance correlation
	// — it is the knob that reproduces the ordering of the paper's
	// Table I.
	yearNoise float64
	// noiseHetero spreads the drift unevenly across pairs: each pair's
	// drift std-dev is yearNoise·exp(noiseHetero·Z_ij) with Z_ij a fixed
	// standard normal. A few erratic pairs destroy variance
	// predictability while leaving overall rank stability (Fig 8) high —
	// the signature of the paper's Migration network (stable stocks,
	// unpredictable revisions).
	noiseHetero float64
	// sparsity drops pairs whose latent intensity falls below this
	// quantile of the intensity distribution, keeping networks from
	// being complete.
	sparsity float64
	// pureSinks, if positive, zeroes the outgoing edges of that many
	// low-population countries, making the Doubly-Stochastic
	// transformation infeasible (the paper's "n/a" networks:
	// Business, Flight, Ownership).
	pureSinks int
	// spurious adds measurement artifacts: this fraction (of the true
	// pair count) of uniformly random pairs receives a weight unrelated
	// to the latent gravity surface, redrawn on fresh pairs every year.
	// These are the noisy connections backboning exists to remove: their
	// weight says nothing the regression predictors can explain, they
	// sit disproportionately on thin margins (where the NC posterior
	// keeps variance estimates honest), and they churn between years.
	spurious float64
}

// generate materializes a gravity network over the configured years.
func (w *World) generate(spec gravitySpec) *Dataset {
	n := w.Cfg.Countries
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(hashName(spec.name))))

	// Latent intensity surface, plus each pair's structural drift scale.
	latent := make([][]float64, n)
	sigma := make([][]float64, n)
	var all []float64
	for i := 0; i < n; i++ {
		latent[i] = make([]float64, n)
		sigma[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			pi := w.Countries[i].Population
			pj := w.Countries[j].Population
			d := w.Dist[i][j] + 100 // soften the short-distance singularity
			v := spec.scale *
				math.Pow(pi/1e7, spec.popExpOrigin) *
				math.Pow(pj/1e7, spec.popExpDest) /
				math.Pow(d/1000, spec.distExp)
			if spec.multiplier != nil {
				v *= spec.multiplier(w, i, j)
			}
			latent[i][j] = v
			sigma[i][j] = spec.yearNoise
			if spec.noiseHetero > 0 {
				sigma[i][j] *= math.Exp(spec.noiseHetero * rng.NormFloat64())
			}
			all = append(all, v)
		}
	}
	cut := stats.Quantile(all, spec.sparsity)
	// Reference level for measurement artifacts: the low end of the
	// admitted intensity range. Spurious connections are haze, not
	// mid-weight flukes — a heavy weight on a random pair would be
	// statistically indistinguishable from signal for any method.
	var admitted []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && latent[i][j] > cut {
				admitted = append(admitted, latent[i][j])
			}
		}
	}
	hazeLevel := stats.Quantile(admitted, 0.10)

	sinks := map[int]bool{}
	if spec.pureSinks > 0 {
		sinks = w.smallestCountries(spec.pureSinks)
	}

	ds := &Dataset{Name: spec.name, Directed: true, Kind: spec.kind}
	truePairs := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && latent[i][j] > cut && !sinks[i] {
				truePairs++
			}
		}
	}
	// Spurious measurement artifacts are systematic: the same pairs are
	// misrecorded at the same characteristic level every year (think a
	// fixed processing bug or persistent misclassification). Keeping
	// them persistent matters: transient artifacts would dominate the
	// observed year-to-year variance and contaminate the Table-I
	// validation, whereas persistent ones only poison the regression.
	type artifact struct {
		i, j int
		lam  float64
	}
	var artifacts []artifact
	if spec.spurious > 0 {
		nSpur := int(spec.spurious * float64(truePairs))
		for s := 0; s < nSpur; s++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j || sinks[i] {
				continue
			}
			artifacts = append(artifacts, artifact{i, j,
				hazeLevel * math.Exp(0.5*rng.NormFloat64())})
		}
	}
	for year := 0; year < w.Cfg.Years; year++ {
		b := w.NodeBuilder(true)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || latent[i][j] <= cut {
					continue
				}
				if sinks[i] {
					continue // a pure sink emits nothing
				}
				lam := latent[i][j]
				if s := sigma[i][j]; s > 0 {
					lam *= math.Exp(s * rng.NormFloat64())
				}
				wgt := float64(stats.SamplePoisson(rng, lam))
				if wgt > 0 {
					b.MustAddEdge(i, j, wgt)
				}
			}
		}
		spur := map[graph.EdgeKey]bool{}
		for _, a := range artifacts {
			wgt := float64(stats.SamplePoisson(rng, a.lam))
			if wgt > 0 {
				b.MustAddEdge(a.i, a.j, wgt)
				// Only pairs with no true interaction count as spurious
				// edges; an artifact landing on a real pair merely
				// perturbs its weight.
				if latent[a.i][a.j] <= cut || sinks[a.i] {
					spur[graph.EdgeKey{U: int32(a.i), V: int32(a.j)}] = true
				}
			}
		}
		ds.Years = append(ds.Years, b.Build())
		ds.Spurious = append(ds.Spurious, spur)
	}
	return ds
}

// smallestCountries returns the indices of the k least populous countries.
func (w *World) smallestCountries(k int) map[int]bool {
	type cp struct {
		idx int
		pop float64
	}
	cps := make([]cp, len(w.Countries))
	for i, c := range w.Countries {
		cps[i] = cp{i, c.Population}
	}
	for i := 0; i < k && i < len(cps); i++ {
		min := i
		for j := i + 1; j < len(cps); j++ {
			if cps[j].pop < cps[min].pop {
				min = j
			}
		}
		cps[i], cps[min] = cps[min], cps[i]
	}
	out := map[int]bool{}
	for i := 0; i < k && i < len(cps); i++ {
		out[cps[i].idx] = true
	}
	return out
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Business generates the corporate-card flow network: directed flows,
// strongly tied to trade (the paper predicts business travel from trade
// volumes). A few micro-states issue no cards, so the DS transformation
// is infeasible — reproducing the paper's "n/a".
func (w *World) Business() *Dataset {
	return w.generate(gravitySpec{
		name: "Business", kind: "flow",
		scale: 40, popExpOrigin: 0.9, popExpDest: 0.7, distExp: 1.3,
		multiplier: func(w *World, i, j int) float64 { return w.tradeAffinity[i][j] },
		yearNoise:  0.10, sparsity: 0.35, pureSinks: 4, spurious: 1.2,
	})
}

// Flight generates the airline seat-capacity flow network: gravity in
// population and distance, distorted by airline hubs whose capacity far
// exceeds the gravity prediction. Hub amplification lives in the node
// margins, so it fools weight- and share-based filters but not the NC
// bilateral null — the reason the paper's Naive and DF backbones do so
// poorly on Flight (Table II: 0.52 and 0.86). A few micro-states have
// inbound-only charter capacity (pure sinks), so DS is infeasible.
func (w *World) Flight() *Dataset {
	return w.generate(gravitySpec{
		name: "Flight", kind: "flow",
		scale: 800, popExpOrigin: 0.8, popExpDest: 0.8, distExp: 1.6,
		multiplier: func(w *World, i, j int) float64 {
			m := 1.0
			if w.AirHub[i] {
				m *= 6
			}
			if w.AirHub[j] {
				m *= 6
			}
			return m
		},
		yearNoise: 0.08, sparsity: 0.55, pureSinks: 3, spurious: 1.2,
	})
}

// Migration generates the migrant-stock network. Shared language
// multiplies flows by ~7 and colonial ties by ~4. Its drift is the most
// heterogeneous across pairs — stocks are stable but individual entries
// get erratic revisions — making its year-to-year variance the hardest
// to predict (paper Table I: correlation 0.064, the lowest).
func (w *World) Migration() *Dataset {
	return w.generate(gravitySpec{
		name: "Migration", kind: "stock",
		scale: 3000, popExpOrigin: 0.8, popExpDest: 0.6, distExp: 1.1,
		multiplier: func(w *World, i, j int) float64 {
			m := 1.0
			if w.SameLanguage[i][j] {
				m *= 7
			}
			if w.ColonialTie[i][j] {
				m *= 4
			}
			return m
		},
		yearNoise: 0.30, noiseHetero: 0.7, sparsity: 0.5, spurious: 1.2,
	})
}

// Ownership generates the establishment-ownership stock network:
// outward FDI gated by origin capability with a heavy log-normal
// firm-size tail (median weight ~1, top percile in the tens of
// thousands, like the paper's D&B data). Zero drift — establishment
// counts are stable stocks, re-measured with pure counting noise — so
// its variance is the most predictable (Table I: 0.872). Several
// micro-states host
// establishments but headquarter none — DS "n/a".
func (w *World) Ownership() *Dataset {
	return w.generate(gravitySpec{
		name: "Ownership", kind: "stock",
		scale: 30, popExpOrigin: 1.0, popExpDest: 0.5, distExp: 0.9,
		multiplier: func(w *World, i, j int) float64 { return w.fdi[i][j] },
		yearNoise:  0, sparsity: 0.6, pureSinks: 5, spurious: 1.2,
	})
}

// Trade generates the dollar-value trade flow network, spanning many
// orders of magnitude. Heterogeneous year noise (commodity prices and
// lumpy contracts hit some pairs much harder than others) gives it the
// second-least predictable variance (Table I: 0.162).
func (w *World) Trade() *Dataset {
	return w.generate(gravitySpec{
		name: "Trade", kind: "flow",
		scale: 2e4, popExpOrigin: 1.1, popExpDest: 0.9, distExp: 1.2,
		multiplier: func(w *World, i, j int) float64 {
			ci := w.Countries[i].Capability
			return math.Pow(w.tradeAffinity[i][j], 2.5) * (0.1 + 8*ci*ci) *
				stats.SampleLogNormal(w.rngFor("trade", i, j), 0, 0.7)
		},
		yearNoise: 0.12, noiseHetero: 0.5, sparsity: 0.3, spurious: 1.2,
	})
}

// rngFor returns a deterministic per-pair RNG so that structural pair
// effects are identical across years (they are part of the latent
// intensity, not of the measurement noise).
func (w *World) rngFor(tag string, i, j int) *rand.Rand {
	seed := w.Cfg.Seed ^ int64(hashName(tag)) ^ (int64(i)<<20 | int64(j))
	return rand.New(rand.NewSource(seed))
}

// CountrySpace generates the undirected co-occurrence network: two
// countries connect with the number of products both export with
// revealed comparative advantage (RCA >= 1). Per-year re-measurement
// perturbs the underlying export volumes.
func (w *World) CountrySpace() *Dataset {
	n := w.Cfg.Countries
	np := w.Cfg.Products
	rng := rand.New(rand.NewSource(w.Cfg.Seed ^ int64(hashName("CountrySpace"))))
	ds := &Dataset{Name: "Country Space", Directed: false, Kind: "co-occurrence"}
	// Persistent spurious co-occurrences (systematic product
	// misclassification): the same random pairs pick up a few
	// information-free common products every year.
	type artifact struct {
		i, j int
		lam  float64
	}
	var artifacts []artifact
	nArt := n * n / 3
	for s := 0; s < nArt; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		artifacts = append(artifacts, artifact{i, j, 1 + 2*rng.Float64()})
	}
	for year := 0; year < w.Cfg.Years; year++ {
		// Measured exports: latent volume times measurement noise whose
		// magnitude shrinks with volume — small trade flows are recorded
		// far more noisily than large ones. This is the key noise channel
		// of the Country Space: it makes the RCA status of small
		// exporters flicker, so the co-occurrence edges of peripheral
		// countries (which the Disparity Filter keeps, because any edge
		// is a large share of a small country's strength) carry weights
		// that no predictor can explain, while the NC posterior variance
		// correctly discounts them.
		meas := make([][]float64, n)
		for i := 0; i < n; i++ {
			meas[i] = make([]float64, np)
			for p := 0; p < np; p++ {
				if v := w.Exports[i][p]; v > 0 {
					sigma := 1.1 / (1 + math.Log10(1+v))
					meas[i][p] = v * math.Exp(sigma*rng.NormFloat64())
				}
			}
		}
		rca := RCA(meas)
		b := w.NodeBuilder(false)
		real := make(map[graph.EdgeKey]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				count := 0.0
				for p := 0; p < np; p++ {
					if rca[i][p] && rca[j][p] {
						count++
					}
				}
				if count > 0 {
					b.MustAddEdge(i, j, count)
					real[graph.EdgeKey{U: int32(i), V: int32(j)}] = true
				}
			}
		}
		spur := map[graph.EdgeKey]bool{}
		for _, a := range artifacts {
			wgt := float64(1 + stats.SamplePoisson(rng, a.lam))
			b.MustAddEdge(a.i, a.j, wgt)
			key := graph.EdgeKey{U: int32(a.i), V: int32(a.j)}
			if !real[key] {
				spur[key] = true
			}
		}
		ds.Years = append(ds.Years, b.Build())
		ds.Spurious = append(ds.Spurious, spur)
	}
	return ds
}

// RCA binarizes an export matrix with Balassa's revealed comparative
// advantage: RCA_ip = (X_ip / X_i.) / (X_.p / X_..) >= 1.
func RCA(x [][]float64) [][]bool {
	n := len(x)
	if n == 0 {
		return nil
	}
	np := len(x[0])
	rowSum := make([]float64, n)
	colSum := make([]float64, np)
	var total float64
	for i := 0; i < n; i++ {
		for p := 0; p < np; p++ {
			rowSum[i] += x[i][p]
			colSum[p] += x[i][p]
			total += x[i][p]
		}
	}
	out := make([][]bool, n)
	for i := 0; i < n; i++ {
		out[i] = make([]bool, np)
		if rowSum[i] == 0 {
			continue
		}
		for p := 0; p < np; p++ {
			if colSum[p] == 0 || x[i][p] == 0 {
				continue
			}
			rca := (x[i][p] / rowSum[i]) / (colSum[p] / total)
			out[i][p] = rca >= 1
		}
	}
	return out
}

// AllDatasets generates the six networks in the paper's discussion order.
func (w *World) AllDatasets() []*Dataset {
	return []*Dataset{
		w.Business(),
		w.CountrySpace(),
		w.Flight(),
		w.Migration(),
		w.Ownership(),
		w.Trade(),
	}
}

// DatasetByName returns the named dataset or an error.
func (w *World) DatasetByName(name string) (*Dataset, error) {
	switch name {
	case "Business", "business":
		return w.Business(), nil
	case "Country Space", "countryspace", "cs":
		return w.CountrySpace(), nil
	case "Flight", "flight":
		return w.Flight(), nil
	case "Migration", "migration":
		return w.Migration(), nil
	case "Ownership", "ownership":
		return w.Ownership(), nil
	case "Trade", "trade":
		return w.Trade(), nil
	}
	return nil, fmt.Errorf("world: unknown dataset %q", name)
}
