package backbone

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/graph"
)

// KCore implements the classic k-core decomposition backbone the paper
// lists among the traditional approaches (Section II, citing Seidman
// 1983): nodes with degree below k are recursively removed, and the
// backbone keeps the edges among the surviving nodes.
//
// As a Scorer, each edge receives the core number of its weaker
// endpoint — the largest k for which the edge survives in the k-core —
// so Threshold(k-1) yields exactly the k-core backbone and TopK
// comparisons against the other methods are meaningful.
type KCore struct{}

// NewKCore returns a KCore scorer.
func NewKCore() *KCore { return &KCore{} }

// Name implements filter.Scorer.
func (*KCore) Name() string { return "kcore" }

// CoreNumbers returns each node's core number: the largest k such that
// the node belongs to the k-core (computed on the undirected view).
// The peeling implementation runs in O(E) using bucketed degrees.
func CoreNumbers(g *graph.Graph) []int {
	u := g.Undirected()
	n := u.NumNodes()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = u.OutDegree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree (Batagelj-Zaveršnik peeling).
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	fill := append([]int(nil), binStart...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	core := make([]int, n)
	cur := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = cur[v]
		for _, a := range u.Out(v) {
			w := int(a.To)
			if cur[w] > cur[v] {
				// Move w one bucket down: swap it with the first node of
				// its current bucket, then shrink the bucket.
				dw := cur[w]
				first := binStart[dw]
				fv := vert[first]
				if fv != w {
					vert[pos[w]], vert[first] = fv, w
					pos[fv], pos[w] = pos[w], first
				}
				binStart[dw]++
				cur[w]--
			}
		}
	}
	return core
}

// Scores assigns each edge the minimum core number of its endpoints.
// The table refers to the undirected view for directed inputs, since
// the decomposition is degree-based.
//
//lint:ctxflow-ok filter.Scorer implementation: the pipeline's ContextScorer wrapper owns cancellation
func (k *KCore) Scores(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	u := g.Undirected()
	core := CoreNumbers(u)
	s := &filter.Scores{
		G:      u,
		Score:  make([]float64, u.NumEdges()),
		Method: k.Name(),
	}
	for id, e := range u.Edges() {
		cu, cv := core[e.Src], core[e.Dst]
		if cv < cu {
			cu = cv
		}
		s.Score[id] = float64(cu)
	}
	return s, nil
}

// Backbone keeps the edges of the k-core: both endpoints survive
// recursive removal of nodes with degree < k.
func (k *KCore) Backbone(g *graph.Graph, kMin int) (*graph.Graph, error) {
	s, err := k.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(float64(kMin) - 0.5), nil
}
