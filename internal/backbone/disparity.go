package backbone

import (
	"fmt"
	"math"

	"repro/internal/filter"
	"repro/internal/graph"
)

// Disparity implements the Disparity Filter of Serrano, Boguñá &
// Vespignani (PNAS 2009), the statistical state of the art the paper
// measures NC against.
//
// The null model is per-node: the k edge-weight shares of a node are
// modeled as the spacings of k-1 uniform points on the unit interval,
// so the share p of one edge survives with p-value
//
//	α_ij = (1 - p)^(k-1).
//
// Each edge is tested twice — from its source as an emitter over
// outgoing weights, and from its target as a receiver over incoming
// weights (for undirected graphs, from both endpoints over incident
// weights) — and the more favorable (smaller) α is kept, matching the
// paper's description: "an edge is tested twice to verify whether its
// weight is significant for either of the connected nodes".
//
// The crucial difference from NC: the two endpoints are never considered
// jointly, so a weak node's connection to a hub always looks significant
// from the weak node's side.
type Disparity struct{}

// NewDisparity returns a Disparity scorer.
func NewDisparity() *Disparity { return &Disparity{} }

// Name implements filter.Scorer.
func (*Disparity) Name() string { return "df" }

// alphaFor returns the Disparity p-value of an edge of weight w at a
// node of strength s and degree k. Degree-1 nodes have α = 1: their
// single edge is exactly what the null predicts, so it carries no
// evidence (the standard convention for the filter).
func alphaFor(w, s float64, k int) float64 {
	if k <= 1 || s <= 0 {
		return 1
	}
	p := w / s
	if p >= 1 {
		return 0
	}
	return math.Pow(1-p, float64(k-1))
}

// NewTable implements filter.RangeScorer; both columns share one
// backing array.
func (d *Disparity) NewTable(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	m := g.NumEdges()
	back := make([]float64, 2*m)
	return &filter.Scores{
		G:      g,
		Score:  back[:m:m],
		Method: d.Name(),
		Aux:    map[string][]float64{"alpha": back[m : 2*m : 2*m]},
	}, nil
}

// ScoreEdges implements filter.RangeScorer, filling rows [lo, hi) with
// the Aux column bound outside the loop.
func (d *Disparity) ScoreEdges(s *filter.Scores, lo, hi int) {
	g := s.G
	edges := g.Edges()
	score := s.Score
	alphaCol := s.Aux["alpha"]
	for id := lo; id < hi; id++ {
		e := edges[id]
		src, dst := int(e.Src), int(e.Dst)
		aOut := alphaFor(e.Weight, g.OutStrength(src), g.OutDegree(src))
		aIn := alphaFor(e.Weight, g.InStrength(dst), g.InDegree(dst))
		alpha := math.Min(aOut, aIn)
		alphaCol[id] = alpha
		score[id] = 1 - alpha
	}
}

// Scores computes 1 - α_ij per edge (higher = more significant), so
// Threshold(1-α) keeps edges significant at level α. Aux column "alpha"
// carries the raw p-values.
func (d *Disparity) Scores(g *graph.Graph) (*filter.Scores, error) {
	return filter.Serial(d, g)
}

// Backbone keeps edges significant at level alpha.
func (d *Disparity) Backbone(g *graph.Graph, alpha float64) (*graph.Graph, error) {
	s, err := d.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(1 - alpha), nil
}
