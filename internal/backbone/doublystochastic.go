package backbone

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/unionfind"
)

// DoublyStochastic implements Slater's two-stage backbone (PNAS 2009).
// Stage one rescales the weighted adjacency matrix into a doubly
// stochastic matrix — every row and every column summing to one — by
// Sinkhorn-Knopp alternating normalization. Stage two sorts edges by
// their normalized weight and adds them, strongest first, until the
// backbone holds every node in a single connected component.
//
// Not every matrix admits the transformation (Sinkhorn 1964): any node
// with outgoing but no incoming weight (or vice versa) makes the rescale
// impossible, and sparse support patterns can make the iteration
// diverge. Extract and Scores report these cases as errors — they are
// the "n/a" entries of the paper's Table II.
type DoublyStochastic struct {
	// MaxIter bounds the Sinkhorn-Knopp iterations (default 2000).
	MaxIter int
	// Tol is the max row/column sum deviation accepted as converged
	// (default 1e-8).
	Tol float64
}

// NewDoublyStochastic returns a DS method with default settings.
func NewDoublyStochastic() *DoublyStochastic {
	return &DoublyStochastic{MaxIter: 2000, Tol: 1e-8}
}

// Name implements filter.Scorer and filter.Extractor.
func (*DoublyStochastic) Name() string { return "ds" }

// sinkhorn returns per-node row and column scaling factors such that
// scaled weight r[i]·w_ij·c[j] is doubly stochastic over non-isolated
// nodes, or an error when the transformation is impossible.
func (ds *DoublyStochastic) sinkhorn(g *graph.Graph) (r, c []float64, err error) {
	n := g.NumNodes()
	// Feasibility: every node must either be fully isolated or have both
	// positive in- and out-strength.
	for v := 0; v < n; v++ {
		in, out := g.InStrength(v), g.OutStrength(v)
		if (in == 0) != (out == 0) {
			return nil, nil, fmt.Errorf("backbone: doubly-stochastic transformation not possible: node %d has in-strength %g but out-strength %g", v, in, out)
		}
	}
	maxIter := ds.MaxIter
	if maxIter <= 0 {
		maxIter = 2000
	}
	tol := ds.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	r = make([]float64, n)
	c = make([]float64, n)
	for i := range r {
		r[i], c[i] = 1, 1
	}
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	apply := func(e graph.Edge, f func(i, j int, w float64)) {
		f(int(e.Src), int(e.Dst), e.Weight)
		if !g.Directed() {
			f(int(e.Dst), int(e.Src), e.Weight)
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		// Row normalization: r[i] <- 1 / sum_j w_ij c[j].
		for i := range rowSum {
			rowSum[i] = 0
		}
		for _, e := range g.Edges() {
			apply(e, func(i, j int, w float64) { rowSum[i] += w * c[j] })
		}
		for i := range r {
			if rowSum[i] > 0 {
				r[i] = 1 / rowSum[i]
			}
		}
		// Column normalization: c[j] <- 1 / sum_i r[i] w_ij.
		for j := range colSum {
			colSum[j] = 0
		}
		for _, e := range g.Edges() {
			apply(e, func(i, j int, w float64) { colSum[j] += r[i] * w })
		}
		for j := range c {
			if colSum[j] > 0 {
				c[j] = 1 / colSum[j]
			}
		}
		// Convergence: all row sums of the rescaled matrix within tol of 1
		// (column sums are exactly 1 right after column normalization).
		for i := range rowSum {
			rowSum[i] = 0
		}
		for _, e := range g.Edges() {
			apply(e, func(i, j int, w float64) { rowSum[i] += r[i] * w * c[j] })
		}
		worst := 0.0
		for v := 0; v < n; v++ {
			if g.OutStrength(v) == 0 {
				continue // isolated: excluded from the matrix
			}
			if d := math.Abs(rowSum[v] - 1); d > worst {
				worst = d
			}
		}
		if worst < tol {
			return r, c, nil
		}
	}
	return nil, nil, fmt.Errorf("backbone: Sinkhorn-Knopp did not converge in %d iterations", maxIter)
}

// Scores returns the doubly-stochastic normalized weight per canonical
// edge (for undirected edges, the larger of the two directions).
//
//lint:ctxflow-ok filter.Scorer implementation: the pipeline's ContextScorer wrapper owns cancellation
func (ds *DoublyStochastic) Scores(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	r, c, err := ds.sinkhorn(g)
	if err != nil {
		return nil, err
	}
	s := &filter.Scores{
		G:      g,
		Score:  make([]float64, g.NumEdges()),
		Method: ds.Name(),
	}
	for id, e := range g.Edges() {
		v := r[e.Src] * e.Weight * c[e.Dst]
		if !g.Directed() {
			if w := r[e.Dst] * e.Weight * c[e.Src]; w > v {
				v = w
			}
		}
		s.Score[id] = v
	}
	return s, nil
}

// Extract runs the full two-stage algorithm: normalized edges are added
// strongest-first until all non-isolated nodes form a single connected
// component (or edges run out, when the input itself is disconnected).
func (ds *DoublyStochastic) Extract(g *graph.Graph) (*graph.Graph, error) {
	s, err := ds.Scores(g)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(s.Score))
	for i := range ids {
		ids[i] = i
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if s.Score[ids[a]] != s.Score[ids[b]] {
			return s.Score[ids[a]] > s.Score[ids[b]]
		}
		return ids[a] < ids[b]
	})
	uf := unionfind.New(g.NumNodes())
	target := 1 + g.NumIsolates() // isolated nodes stay singleton sets
	keep := make(map[int32]bool)
	for _, id := range ids {
		e := g.Edge(id)
		keep[int32(id)] = true
		uf.Union(int(e.Src), int(e.Dst))
		if uf.Sets() == target {
			break
		}
	}
	return g.KeepEdges(keep), nil
}
