package backbone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestCoreNumbersCliqueWithTail(t *testing.T) {
	// K4 plus a path hanging off it: clique nodes have core 3, the
	// path degrades 1.
	b := graph.NewBuilder(false)
	b.AddNodes(7)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.MustAddEdge(i, j, 1)
		}
	}
	b.MustAddEdge(3, 4, 1)
	b.MustAddEdge(4, 5, 1)
	b.MustAddEdge(5, 6, 1)
	g := b.Build()
	core := CoreNumbers(g)
	want := []int{3, 3, 3, 3, 1, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Errorf("core[%d] = %d, want %d", v, core[v], w)
		}
	}
}

func TestKCoreBackbone(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddNodes(6)
	// Triangle (core 2) plus pendant edges (core 1).
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(3, 4, 1)
	b.MustAddEdge(4, 5, 1)
	g := b.Build()
	bb, err := NewKCore().Backbone(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() != 3 {
		t.Fatalf("2-core kept %d edges, want the triangle", bb.NumEdges())
	}
	for _, e := range bb.Edges() {
		if e.Src > 2 || e.Dst > 2 {
			t.Errorf("non-triangle edge %+v in 2-core", e)
		}
	}
	all, err := NewKCore().Backbone(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumEdges() != g.NumEdges() {
		t.Errorf("1-core kept %d edges, want all", all.NumEdges())
	}
	if _, err := NewKCore().Scores(graph.NewBuilder(false).Build()); err == nil {
		t.Error("empty graph accepted")
	}
}

// Property: core numbers match a naive recursive-peeling reference.
func TestQuickCoreNumbersAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		b := graph.NewBuilder(false)
		b.AddNodes(n)
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.MustAddEdge(u, v, 1)
			}
		}
		g := b.Build()
		fast := CoreNumbers(g)
		for v := 0; v < n; v++ {
			if fast[v] != naiveCore(g, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// naiveCore returns the largest k such that node v survives repeated
// removal of nodes with degree < k.
func naiveCore(g *graph.Graph, v int) int {
	n := g.NumNodes()
	for k := n; k >= 0; k-- {
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		for changed := true; changed; {
			changed = false
			for u := 0; u < n; u++ {
				if !alive[u] {
					continue
				}
				deg := 0
				for _, a := range g.Out(u) {
					if alive[a.To] {
						deg++
					}
				}
				if deg < k {
					alive[u] = false
					changed = true
				}
			}
		}
		if alive[v] {
			return k
		}
	}
	return 0
}
