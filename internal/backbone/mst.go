package backbone

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/unionfind"
)

// MST extracts the Maximum Spanning Tree (a maximum spanning forest when
// the graph is disconnected) with Kruskal's algorithm run on descending
// weights. Directed graphs are first symmetrized by summing reciprocal
// weights, as the spanning-tree problem is defined on undirected graphs.
//
// MST is parameter-free, so it implements filter.Extractor.
type MST struct{}

// NewMST returns an MST extractor.
func NewMST() *MST { return &MST{} }

// Name implements filter.Extractor.
func (*MST) Name() string { return "mst" }

// Extract returns the maximum spanning forest. The result preserves the
// input's full node set; for directed inputs the forest is undirected
// with merged reciprocal weights.
func (m *MST) Extract(g *graph.Graph) (*graph.Graph, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	u := g.Undirected()
	ids := make([]int, u.NumEdges())
	for i := range ids {
		ids[i] = i
	}
	edges := u.Edges()
	// Descending weight; ties broken by edge ID for determinism. The
	// paper notes tied weights make the MST non-unique — this picks the
	// lexicographically first.
	sort.SliceStable(ids, func(a, b int) bool {
		if edges[ids[a]].Weight != edges[ids[b]].Weight {
			return edges[ids[a]].Weight > edges[ids[b]].Weight
		}
		return ids[a] < ids[b]
	})
	uf := unionfind.New(u.NumNodes())
	keep := make(map[int32]bool, u.NumNodes()-1)
	for _, id := range ids {
		e := edges[id]
		if uf.Union(int(e.Src), int(e.Dst)) {
			keep[int32(id)] = true
		}
	}
	return u.KeepEdges(keep), nil
}
