package backbone

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Two dense clusters joined by a single bridge: every inter-cluster
// shortest path crosses the bridge, so its salience must be 1, while
// redundant intra-cluster edges score low.
func TestHSSBridgeSalience(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddNodes(8)
	clusterEdges := func(nodes []int) {
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				b.MustAddEdge(nodes[i], nodes[j], 1)
			}
		}
	}
	clusterEdges([]int{0, 1, 2, 3})
	clusterEdges([]int{4, 5, 6, 7})
	b.MustAddEdge(3, 4, 1) // the bridge
	g := b.Build()
	s, err := NewHSS().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	var bridge int = -1
	for i, e := range g.Edges() {
		if (e.Src == 3 && e.Dst == 4) || (e.Src == 4 && e.Dst == 3) {
			bridge = i
		}
	}
	if got := s.Score[bridge]; got != 1 {
		t.Errorf("bridge salience = %v, want 1", got)
	}
	for i := range s.Score {
		if s.Score[i] < 0 || s.Score[i] > 1 {
			t.Errorf("salience out of [0,1]: %v", s.Score[i])
		}
	}
	bb, err := NewHSS().Backbone(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bb.Weight(3, 4); !ok {
		t.Error("bridge dropped by HSS backbone")
	}
}

func TestHSSPathGraphAllSalient(t *testing.T) {
	// On a path, every edge lies on every SPT that reaches past it;
	// edge (i, i+1) belongs to all n SPTs.
	g := line(t, 1, 2, 3, 4)
	s, err := NewHSS().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Score {
		if v != 1 {
			t.Errorf("path edge %d salience = %v, want 1", i, v)
		}
	}
}

func TestHSSStrongDetour(t *testing.T) {
	// Triangle where going around 0-1-2 (weights 10,10 => distance 0.2)
	// beats the direct 0-2 edge (weight 1 => distance 1). The weak
	// direct edge should appear in no SPT.
	b := graph.NewBuilder(false)
	b.AddNodes(3)
	b.MustAddEdge(0, 1, 10)
	b.MustAddEdge(1, 2, 10)
	b.MustAddEdge(0, 2, 1)
	g := b.Build()
	s, err := NewHSS().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range g.Edges() {
		if e.Weight == 1 {
			if s.Score[i] != 0 {
				t.Errorf("bypassed edge salience = %v, want 0", s.Score[i])
			}
		} else if s.Score[i] != 1 {
			t.Errorf("backbone edge salience = %v, want 1", s.Score[i])
		}
	}
}

func TestDoublyStochasticConvergesOnSymmetric(t *testing.T) {
	// K4 with distinct weights: a complete graph has total support, so
	// the Sinkhorn scaling exists and the iteration converges.
	b := graph.NewBuilder(false)
	b.AddNodes(4)
	b.MustAddEdge(0, 1, 5)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(2, 3, 7)
	b.MustAddEdge(3, 0, 2)
	b.MustAddEdge(0, 2, 3)
	b.MustAddEdge(1, 3, 4)
	g := b.Build()
	ds := NewDoublyStochastic()
	r, c, err := ds.sinkhorn(g)
	if err != nil {
		t.Fatal(err)
	}
	// Verify double stochasticity directly.
	n := g.NumNodes()
	rowSum := make([]float64, n)
	colSum := make([]float64, n)
	for _, e := range g.Edges() {
		rowSum[e.Src] += r[e.Src] * e.Weight * c[e.Dst]
		colSum[e.Dst] += r[e.Src] * e.Weight * c[e.Dst]
		rowSum[e.Dst] += r[e.Dst] * e.Weight * c[e.Src]
		colSum[e.Src] += r[e.Dst] * e.Weight * c[e.Src]
	}
	for i := 0; i < n; i++ {
		if math.Abs(rowSum[i]-1) > 1e-6 || math.Abs(colSum[i]-1) > 1e-6 {
			t.Errorf("node %d: row %v col %v, want 1", i, rowSum[i], colSum[i])
		}
	}
}

func TestDoublyStochasticInfeasible(t *testing.T) {
	// A pure source (out but no in) makes the transformation impossible.
	b := graph.NewBuilder(true)
	b.AddNodes(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(2, 1, 1)
	g := b.Build() // node 0 has out-strength 1, in-strength 0
	if _, err := NewDoublyStochastic().Scores(g); err == nil {
		t.Error("pure-source graph accepted — paper's n/a case must error")
	}
}

func TestDoublyStochasticExtractConnects(t *testing.T) {
	// Two triangles plus one weak bridge: DS must keep adding edges
	// until the bridge joins the components.
	b := graph.NewBuilder(false)
	b.AddNodes(6)
	tri := func(a0, a1, a2 int, w float64) {
		b.MustAddEdge(a0, a1, w)
		b.MustAddEdge(a1, a2, w)
		b.MustAddEdge(a0, a2, w)
	}
	tri(0, 1, 2, 10)
	tri(3, 4, 5, 10)
	b.MustAddEdge(2, 3, 0.5)
	g := b.Build()
	bb, err := NewDoublyStochastic().Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bb.IsWeaklyConnected() {
		t.Error("DS backbone not connected")
	}
	if _, ok := bb.Weight(2, 3); !ok {
		t.Error("bridge missing from DS backbone")
	}
}

func TestDoublyStochasticExtractDisconnectedInput(t *testing.T) {
	// Disconnected input: extraction cannot reach one component; it must
	// terminate with everything rather than loop forever.
	b := graph.NewBuilder(false)
	b.AddNodes(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(2, 3, 1)
	g := b.Build()
	bb, err := NewDoublyStochastic().Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() != 2 {
		t.Errorf("kept %d edges, want all 2", bb.NumEdges())
	}
}

// Property: on undirected graphs with all nodes covered, Sinkhorn
// scaling produces row sums within tolerance of 1.
func TestQuickSinkhornRowSums(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		b := graph.NewBuilder(false)
		b.AddNodes(n)
		// Ring ensures every node has edges; extra random chords.
		for i := 0; i < n; i++ {
			b.MustAddEdge(i, (i+1)%n, 1+rng.Float64()*10)
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.MustAddEdge(u, v, 1+rng.Float64()*10)
			}
		}
		g := b.Build()
		ds := NewDoublyStochastic()
		r, c, err := ds.sinkhorn(g)
		if err != nil {
			return true // non-convergence is a legal, reported outcome
		}
		rowSum := make([]float64, n)
		for _, e := range g.Edges() {
			rowSum[e.Src] += r[e.Src] * e.Weight * c[e.Dst]
			rowSum[e.Dst] += r[e.Dst] * e.Weight * c[e.Src]
		}
		for i := range rowSum {
			if math.Abs(rowSum[i]-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMethodNames(t *testing.T) {
	names := map[string]string{
		NewNaive().Name():            "naive",
		NewMST().Name():              "mst",
		NewDisparity().Name():        "df",
		NewHSS().Name():              "hss",
		NewDoublyStochastic().Name(): "ds",
	}
	for got, want := range names {
		if got != want {
			t.Errorf("name %q, want %q", got, want)
		}
	}
}
