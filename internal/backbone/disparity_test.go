package backbone

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestDisparityAlphaFormula(t *testing.T) {
	// Node with strength 10 and degree 3; edge of weight 6:
	// alpha = (1 - 0.6)^2 = 0.16.
	if got := alphaFor(6, 10, 3); math.Abs(got-0.16) > 1e-12 {
		t.Errorf("alphaFor = %v, want 0.16", got)
	}
	// Degree-1 node: no evidence, alpha = 1.
	if got := alphaFor(5, 5, 1); got != 1 {
		t.Errorf("k=1 alpha = %v, want 1", got)
	}
	// Full share: alpha = 0.
	if got := alphaFor(10, 10, 3); got != 0 {
		t.Errorf("p=1 alpha = %v, want 0", got)
	}
	if got := alphaFor(1, 0, 3); got != 1 {
		t.Errorf("zero strength alpha = %v, want 1", got)
	}
}

func TestDisparityStar(t *testing.T) {
	// Star: hub 0 with 4 spokes, one dominant spoke. From the hub's
	// perspective the dominant edge has small alpha; the others large.
	b := graph.NewBuilder(false)
	b.AddNodes(5)
	b.MustAddEdge(0, 1, 100)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(0, 3, 1)
	b.MustAddEdge(0, 4, 1)
	g := b.Build()
	s, err := NewDisparity().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	var dom, weak int = -1, -1
	for i, e := range g.Edges() {
		if e.Weight == 100 {
			dom = i
		} else if weak < 0 {
			weak = i
		}
	}
	if s.Score[dom] <= s.Score[weak] {
		t.Errorf("dominant spoke score %v <= weak spoke %v", s.Score[dom], s.Score[weak])
	}
	// Hand check the dominant edge: from hub, p = 100/103, k = 4:
	// alpha_hub = (3/103)^3; from spoke, k = 1: alpha = 1. Min wins.
	want := math.Pow(3.0/103.0, 3)
	if got := s.Aux["alpha"][dom]; math.Abs(got-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v", got, want)
	}
}

func TestDisparityDirectedUsesBothEnds(t *testing.T) {
	// Edge u->v: u has a single outgoing edge (alpha_out = 1) but v
	// receives from many sources, one dominant — the test from v's side
	// must make the dominant incoming edge significant.
	b := graph.NewBuilder(true)
	u := b.AddNode("u")
	v := b.AddNode("v")
	b.MustAddEdge(u, v, 50)
	for i := 0; i < 5; i++ {
		w := b.AddNode("")
		b.MustAddEdge(w, v, 1)
	}
	g := b.Build()
	s, err := NewDisparity().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	var strong int = -1
	for i, e := range g.Edges() {
		if e.Weight == 50 {
			strong = i
		}
	}
	// From u: k_out = 1 => alpha 1. From v: p = 50/55, k_in = 6.
	want := math.Pow(5.0/55.0, 5)
	if got := s.Aux["alpha"][strong]; math.Abs(got-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v (receiver-side test)", got, want)
	}
}

// The paper's central criticism of DF (Figure 3): a peripheral node's
// edge to a hub looks significant from the peripheral side even when
// the hub's attraction makes it unremarkable. Verify DF indeed keeps
// periphery->hub edges that NC ranks low — the toy-example experiment
// depends on this behaviour.
func TestDisparityKeepsPeripheryHubEdges(t *testing.T) {
	g := toyHubGraph()
	s, err := NewDisparity().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	idx := func(u, v int32) int {
		for i, e := range g.Edges() {
			if (e.Src == u && e.Dst == v) || (e.Src == v && e.Dst == u) {
				return i
			}
		}
		t.Fatalf("edge %d-%d not found", u, v)
		return -1
	}
	// Hub-to-pure-peripheral edges (1-4, 1-5, 1-6 in paper numbering)
	// must rank above the 2-3 peripheral-peripheral edge under DF: from
	// the peripheral side, the hub edge is the node's whole strength.
	e23 := idx(1, 2)
	for _, pair := range [][2]int32{{0, 3}, {0, 4}, {0, 5}} {
		he := idx(pair[0], pair[1])
		if s.Score[he] <= s.Score[e23] {
			t.Errorf("DF: hub edge %v should outrank peripheral edge 2-3 (%v <= %v)",
				pair, s.Score[he], s.Score[e23])
		}
	}
}

// toyHubGraph builds the paper's Figure 3 example: hub node 1 connected
// to five nodes (2..6) with strong edges; nodes 2 and 3 also share a
// weaker edge. IDs: paper node k has ID k-1.
func toyHubGraph() *graph.Graph {
	b := graph.NewBuilder(false)
	b.AddNodes(6)
	hubW := []float64{6, 6, 20, 20, 20} // 1-2, 1-3, 1-4, 1-5, 1-6
	for i, w := range hubW {
		b.MustAddEdge(0, i+1, w)
	}
	b.MustAddEdge(1, 2, 4) // the 2-3 edge, weaker than any hub edge
	return b.Build()
}

// Property: DF alpha values are in [0, 1] and scores ordered opposite
// to alpha.
func TestQuickDisparityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		b := graph.NewBuilder(rng.Intn(2) == 0)
		b.AddNodes(n)
		for k := 0; k < 4*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.MustAddEdge(u, v, 1+rng.Float64()*100)
			}
		}
		g := b.Build()
		if g.NumEdges() == 0 {
			return true
		}
		s, err := NewDisparity().Scores(g)
		if err != nil {
			return false
		}
		for i := range s.Score {
			a := s.Aux["alpha"][i]
			if a < 0 || a > 1 {
				return false
			}
			if math.Abs(s.Score[i]-(1-a)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
