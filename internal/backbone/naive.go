// Package backbone implements the baseline backboning algorithms the
// paper compares the Noise-Corrected method against (Section III-B):
// naive weight thresholding, the Maximum Spanning Tree, the Disparity
// Filter of Serrano et al., the High Salience Skeleton of Grady et al.,
// and Slater's Doubly-Stochastic two-stage algorithm.
//
// All methods plug into the filter.Scorer / filter.Extractor framework
// so they can be compared at equal backbone sizes.
package backbone

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/graph"
)

// Naive scores each edge by its raw weight, so thresholding reproduces
// the classic "drop everything lighter than δ" filter. The paper uses it
// as the floor any serious method must beat.
type Naive struct{}

// NewNaive returns a Naive scorer.
func NewNaive() *Naive { return &Naive{} }

// Name implements filter.Scorer.
func (*Naive) Name() string { return "naive" }

// NewTable implements filter.RangeScorer.
func (n *Naive) NewTable(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	return &filter.Scores{
		G:      g,
		Score:  make([]float64, g.NumEdges()),
		Method: n.Name(),
	}, nil
}

// ScoreEdges implements filter.RangeScorer.
func (n *Naive) ScoreEdges(s *filter.Scores, lo, hi int) {
	edges := s.G.Edges()
	score := s.Score
	for id := lo; id < hi; id++ {
		score[id] = edges[id].Weight
	}
}

// Scores returns edge weights as significance values.
func (n *Naive) Scores(g *graph.Graph) (*filter.Scores, error) {
	return filter.Serial(n, g)
}

// Backbone keeps edges with weight strictly above the threshold.
func (n *Naive) Backbone(g *graph.Graph, threshold float64) (*graph.Graph, error) {
	s, err := n.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(threshold), nil
}
