package backbone

import (
	"container/heap"
	"fmt"

	"repro/internal/filter"
	"repro/internal/graph"
)

// HSS implements the High Salience Skeleton of Grady, Thiemann &
// Brockmann (Nature Communications 2012). For every node r the
// shortest-path tree (SPT) rooted at r is computed on effective
// distances 1/w (strong edges are short). The salience of an edge is
// the share of all SPTs that contain it. Empirically salience is
// bimodal — edges sit near 0 or near 1 — and the skeleton keeps the
// high-salience edges.
//
// HSS is defined structurally on undirected graphs; directed inputs are
// symmetrized. Its cost is one Dijkstra per node, O(V·E·logV) overall,
// which is why the paper could not run it beyond a few thousand edges
// (Section V-G) — this implementation faithfully reproduces that
// asymptotic behaviour.
type HSS struct{}

// NewHSS returns an HSS scorer.
func NewHSS() *HSS { return &HSS{} }

// Name implements filter.Scorer.
func (*HSS) Name() string { return "hss" }

// Scores returns per-edge salience in [0, 1] on the undirected view of
// g. For directed inputs the returned Scores table refers to the
// symmetrized graph (reciprocal weights merged), since salience is
// undefined per direction.
func (h *HSS) Scores(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("backbone: empty graph")
	}
	u := g.Undirected()
	n := u.NumNodes()
	counts := make([]int32, u.NumEdges())

	dist := make([]float64, n)
	parentEdge := make([]int32, n)
	visited := make([]bool, n)
	for root := 0; root < n; root++ {
		dijkstraSPT(u, root, dist, parentEdge, visited)
		for v := 0; v < n; v++ {
			if v != root && visited[v] && parentEdge[v] >= 0 {
				counts[parentEdge[v]]++
			}
		}
	}
	s := &filter.Scores{
		G:      u,
		Score:  make([]float64, u.NumEdges()),
		Method: h.Name(),
	}
	for id := range counts {
		s.Score[id] = float64(counts[id]) / float64(n)
	}
	return s, nil
}

// Backbone keeps edges with salience strictly above the threshold
// (0.5 is a customary choice given the bimodal salience distribution).
func (h *HSS) Backbone(g *graph.Graph, salience float64) (*graph.Graph, error) {
	s, err := h.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.Threshold(salience), nil
}

// dijkstraSPT computes the shortest-path tree from root over distances
// 1/weight, writing distances, parent edge IDs (-1 for none) and
// visitation flags into the provided scratch slices.
func dijkstraSPT(u *graph.Graph, root int, dist []float64, parentEdge []int32, visited []bool) {
	const inf = 1e308
	for i := range dist {
		dist[i] = inf
		parentEdge[i] = -1
		visited[i] = false
	}
	dist[root] = 0
	pq := &distHeap{items: []distItem{{node: int32(root), dist: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		v := int(it.node)
		if visited[v] {
			continue
		}
		visited[v] = true
		for _, a := range u.Out(v) {
			w := int(a.To)
			if visited[w] || a.Weight <= 0 {
				continue
			}
			nd := dist[v] + 1/a.Weight
			if nd < dist[w] {
				dist[w] = nd
				parentEdge[w] = a.EdgeID
				heap.Push(pq, distItem{node: a.To, dist: nd})
			}
		}
	}
}

type distItem struct {
	node int32
	dist float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].dist < h.items[j].dist }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
