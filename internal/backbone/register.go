package backbone

import (
	"repro/internal/filter"
)

// Every baseline self-registers into the default method registry, in
// the paper's presentation order after NC (Order 10): DF, HSS, DS,
// MST, NT, then the extra traditional baselines.
func init() {
	filter.MustRegister(&filter.Method{
		Name:  "df",
		Title: "Disparity Filter",
		Desc:  "disparity filter (Serrano et al. 2009); keeps edges significant at level alpha under a uniform-split null",
		Order: 20,
		Params: []filter.Param{
			{Name: "alpha", Default: 0.05, Desc: "significance level on the disparity p-value"},
		},
		Scorer:         NewDisparity(),
		ParallelScorer: filter.Parallelize(NewDisparity()),
		Cut:            func(p filter.Params) float64 { return 1 - p["alpha"] },
		// The disparity p-value reads only the edge weight and its
		// endpoints' strength/degree: an update dirties the frontier of
		// rows incident to touched nodes.
		Delta: &filter.DeltaScorer{Dirtiness: filter.DirtyEndpoints},
	})
	filter.MustRegister(&filter.Method{
		Name:  "hss",
		Title: "High Salience Skeleton",
		Desc:  "high salience skeleton (Grady et al. 2012); keeps edges on many shortest-path trees",
		Order: 30,
		Params: []filter.Param{
			{Name: "salience", Default: 0.5, Desc: "minimum share of shortest-path trees containing the edge"},
		},
		Scorer: NewHSS(),
		Cut:    func(p filter.Params) float64 { return p["salience"] },
	})
	ds := NewDoublyStochastic()
	filter.MustRegister(&filter.Method{
		Name:      "ds",
		Title:     "Doubly Stochastic",
		Desc:      "Sinkhorn-normalized weights added strongest-first until connected (Slater 2009); parameter-free",
		Order:     40,
		Scorer:    ds,
		Extractor: ds,
		FixedSize: true,
	})
	filter.MustRegister(&filter.Method{
		Name:      "mst",
		Title:     "Maximum Spanning Tree",
		Desc:      "maximum spanning forest by Kruskal; parameter-free, fixed size",
		Order:     50,
		Extractor: NewMST(),
		FixedSize: true,
	})
	filter.MustRegister(&filter.Method{
		Name:  "nt",
		Title: "Naive Threshold",
		Desc:  "classic weight threshold: keep edges strictly heavier than the cut",
		Order: 60,
		Params: []filter.Param{
			{Name: "threshold", Default: 0, Desc: "minimum edge weight"},
		},
		Scorer:         NewNaive(),
		ParallelScorer: filter.Parallelize(NewNaive()),
		Cut:            func(p filter.Params) float64 { return p["threshold"] },
		// The naive score is the edge weight itself: only rows whose
		// weight changed (or were inserted) dirty.
		Delta: &filter.DeltaScorer{Dirtiness: filter.DirtyEdge},
	})
	filter.MustRegister(&filter.Method{
		Name:  "kcore",
		Title: "K-Core",
		Desc:  "k-core decomposition backbone (Seidman 1983); keeps edges whose endpoints both survive degree-k peeling",
		Order: 80,
		Params: []filter.Param{
			{Name: "k", Default: 2, Integer: true, Desc: "minimum degree of the k-core"},
		},
		Scorer: NewKCore(),
		Cut:    func(p filter.Params) float64 { return float64(int(p["k"])) - 0.5 },
	})
}
