package backbone

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func line(t *testing.T, weights ...float64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(false)
	b.AddNodes(len(weights) + 1)
	for i, w := range weights {
		b.MustAddEdge(i, i+1, w)
	}
	return b.Build()
}

func TestNaiveThreshold(t *testing.T) {
	g := line(t, 1, 5, 3, 10)
	nt := NewNaive()
	bb, err := nt.Backbone(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bb.NumEdges() != 2 {
		t.Fatalf("kept %d edges, want 2 (weights 5 and 10)", bb.NumEdges())
	}
	for _, e := range bb.Edges() {
		if e.Weight <= 3 {
			t.Errorf("edge with weight %v survived threshold 3", e.Weight)
		}
	}
	if bb.NumNodes() != g.NumNodes() {
		t.Error("node set not preserved")
	}
	if _, err := nt.Scores(graph.NewBuilder(true).Build()); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestNaiveTopK(t *testing.T) {
	g := line(t, 1, 5, 3, 10)
	s, err := NewNaive().Scores(g)
	if err != nil {
		t.Fatal(err)
	}
	top2 := s.TopK(2)
	wm := top2.WeightMap()
	if len(wm) != 2 {
		t.Fatalf("TopK(2) kept %d", len(wm))
	}
	for _, e := range top2.Edges() {
		if e.Weight != 5 && e.Weight != 10 {
			t.Errorf("unexpected edge weight %v in top-2", e.Weight)
		}
	}
	if got := s.TopK(100).NumEdges(); got != 4 {
		t.Errorf("TopK beyond m kept %d", got)
	}
	if got := s.TopK(-1).NumEdges(); got != 0 {
		t.Errorf("TopK(-1) kept %d", got)
	}
	if got := s.TopFraction(0.5).NumEdges(); got != 2 {
		t.Errorf("TopFraction(0.5) kept %d", got)
	}
	if s.CountAbove(3) != 2 {
		t.Errorf("CountAbove(3) = %d", s.CountAbove(3))
	}
	if th := s.ThresholdForK(2); th != 5 {
		t.Errorf("ThresholdForK(2) = %v, want 5", th)
	}
}

func TestMSTKnownTree(t *testing.T) {
	// Square with diagonal: MST must pick the heaviest three edges that
	// form a tree.
	b := graph.NewBuilder(false)
	b.AddNodes(4)
	b.MustAddEdge(0, 1, 10)
	b.MustAddEdge(1, 2, 9)
	b.MustAddEdge(2, 3, 8)
	b.MustAddEdge(3, 0, 1)
	b.MustAddEdge(0, 2, 2)
	g := b.Build()
	tree, err := NewMST().Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumEdges() != 3 {
		t.Fatalf("tree has %d edges, want 3", tree.NumEdges())
	}
	var total float64
	for _, e := range tree.Edges() {
		total += e.Weight
	}
	if total != 27 {
		t.Errorf("tree weight %v, want 27 (10+9+8)", total)
	}
	if !tree.IsWeaklyConnected() {
		t.Error("spanning tree not connected")
	}
}

func TestMSTForestOnDisconnected(t *testing.T) {
	b := graph.NewBuilder(false)
	b.AddNodes(5)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(0, 2, 1)
	b.MustAddEdge(3, 4, 7)
	g := b.Build()
	forest, err := NewMST().Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if forest.NumEdges() != 3 {
		t.Fatalf("forest edges = %d, want 3 (2 + 1)", forest.NumEdges())
	}
	if _, ok := forest.Weight(0, 2); ok {
		t.Error("weakest cycle edge (0,2) should be dropped")
	}
}

func TestMSTDirectedSymmetrizes(t *testing.T) {
	b := graph.NewBuilder(true)
	b.AddNodes(3)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 0, 2) // merged: 4
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(2, 0, 1)
	g := b.Build()
	tree, err := NewMST().Extract(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Directed() {
		t.Error("MST of directed input should be undirected")
	}
	if w, ok := tree.Weight(0, 1); !ok || w != 4 {
		t.Errorf("merged edge weight = %v,%v, want 4,true", w, ok)
	}
	if _, ok := tree.Weight(2, 0); ok {
		t.Error("weakest edge survived")
	}
}

// Properties of the maximum spanning forest on random connected graphs:
// exactly n-1 edges, spans all nodes, and no forest has larger total
// weight (verified against brute force on small n).
func TestQuickMSTIsMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5) // small enough for brute force
		b := graph.NewBuilder(false)
		b.AddNodes(n)
		type pair struct{ u, v int }
		var pairs []pair
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, pair{u, v})
			}
		}
		for _, p := range pairs {
			b.MustAddEdge(p.u, p.v, 1+float64(rng.Intn(50)))
		}
		g := b.Build()
		tree, err := NewMST().Extract(g)
		if err != nil || tree.NumEdges() != n-1 || !tree.IsWeaklyConnected() {
			return false
		}
		var treeW float64
		for _, e := range tree.Edges() {
			treeW += e.Weight
		}
		// Brute force: every subset of size n-1 that is a spanning tree.
		m := g.NumEdges()
		edges := g.Edges()
		best := 0.0
		for mask := 0; mask < 1<<m; mask++ {
			if popcount(mask) != n-1 {
				continue
			}
			sub := g.FilterEdges(func(id int, _ graph.Edge) bool { return mask&(1<<id) != 0 })
			// A spanning tree must cover every node, not merely be
			// connected among non-isolates.
			if sub.NumIsolates() > 0 || !sub.IsWeaklyConnected() {
				continue
			}
			var w float64
			for id := 0; id < m; id++ {
				if mask&(1<<id) != 0 {
					w += edges[id].Weight
				}
			}
			if w > best {
				best = w
			}
		}
		return treeW == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func popcount(x int) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
