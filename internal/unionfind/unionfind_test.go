package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	uf := New(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets() = %d, want 5", uf.Sets())
	}
	for i := 0; i < 5; i++ {
		if uf.Find(i) != i {
			t.Errorf("Find(%d) = %d, want %d", i, uf.Find(i), i)
		}
	}
	if uf.Connected(0, 1) {
		t.Error("fresh elements reported connected")
	}
}

func TestUnionMergesAndCounts(t *testing.T) {
	uf := New(6)
	if !uf.Union(0, 1) {
		t.Error("first Union(0,1) returned false")
	}
	if uf.Union(1, 0) {
		t.Error("repeated Union(1,0) returned true")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if !uf.Connected(1, 2) {
		t.Error("1 and 2 should be connected transitively")
	}
	if uf.Sets() != 3 {
		t.Errorf("Sets() = %d, want 3 ({0,1,2,3},{4},{5})", uf.Sets())
	}
}

func TestComponentsLabels(t *testing.T) {
	uf := New(5)
	uf.Union(0, 2)
	uf.Union(3, 4)
	labels := uf.Components()
	if labels[0] != labels[2] {
		t.Error("0 and 2 have different labels")
	}
	if labels[3] != labels[4] {
		t.Error("3 and 4 have different labels")
	}
	if labels[0] == labels[1] || labels[1] == labels[3] || labels[0] == labels[3] {
		t.Errorf("distinct components share labels: %v", labels)
	}
	// Labels must be dense, starting at 0.
	max := 0
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	if max != uf.Sets()-1 {
		t.Errorf("max label %d, want %d", max, uf.Sets()-1)
	}
}

func TestZeroElements(t *testing.T) {
	uf := New(0)
	if uf.Sets() != 0 || uf.Len() != 0 {
		t.Errorf("empty UF: Sets=%d Len=%d", uf.Sets(), uf.Len())
	}
	if got := uf.Components(); len(got) != 0 {
		t.Errorf("Components() = %v, want empty", got)
	}
}

// Property: after any sequence of unions, Sets() equals n minus the
// number of successful merges, and Connected agrees with a brute-force
// reference implementation.
func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		uf := New(n)
		ref := make([]int, n) // reference: naive label array
		for i := range ref {
			ref[i] = i
		}
		merges := 0
		for k := 0; k < 3*n; k++ {
			x, y := rng.Intn(n), rng.Intn(n)
			merged := uf.Union(x, y)
			if ref[x] != ref[y] {
				if !merged {
					return false
				}
				merges++
				old, nw := ref[y], ref[x]
				for i := range ref {
					if ref[i] == old {
						ref[i] = nw
					}
				}
			} else if merged {
				return false
			}
		}
		if uf.Sets() != n-merges {
			return false
		}
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if uf.Connected(x, y) != (ref[x] == ref[y]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, n)
	ys := make([]int, n)
	for i := range xs {
		xs[i], ys[i] = rng.Intn(n), rng.Intn(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		uf := New(n)
		for j := range xs {
			uf.Union(xs[j], ys[j])
		}
	}
}
