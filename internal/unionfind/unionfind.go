// Package unionfind provides a disjoint-set (union-find) data structure
// with union by rank and path compression.
//
// It is the workhorse behind Kruskal's maximum spanning tree, connected
// component computation, and the Doubly-Stochastic backbone's stopping
// rule ("add edges until the backbone is one connected component").
package unionfind

// UnionFind maintains a partition of {0, ..., n-1} into disjoint sets.
// The zero value is not usable; call New.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a UnionFind over n singleton sets.
func New(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Len returns the number of elements.
func (uf *UnionFind) Len() int { return len(uf.parent) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Find returns the canonical representative of x's set,
// compressing paths as it goes.
func (uf *UnionFind) Find(x int) int {
	root := int32(x)
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	// Path compression: point every node on the walk directly at the root.
	for int32(x) != root {
		next := uf.parent[x]
		uf.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets containing x and y.
// It reports whether a merge happened (false if they were already joined).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = int32(rx)
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Components returns, for each element, a dense component label in
// [0, Sets()), numbered in order of first appearance.
func (uf *UnionFind) Components() []int {
	labels := make([]int, len(uf.parent))
	next := 0
	seen := make(map[int]int, uf.sets)
	for i := range uf.parent {
		r := uf.Find(i)
		l, ok := seen[r]
		if !ok {
			l = next
			seen[r] = l
			next++
		}
		labels[i] = l
	}
	return labels
}
