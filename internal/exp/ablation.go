package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/filter"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/stats"
)

// pluginNC is the ablated Noise-Corrected scorer: identical to core.NC
// except that P_ij is estimated by the degenerate plug-in frequency
// N_ij/N.. instead of the Beta-Binomial posterior mean. It isolates the
// contribution of the paper's Bayesian step.
type pluginNC struct{}

func (pluginNC) Name() string { return "nc-plugin" }

func (p pluginNC) Scores(g *graph.Graph) (*filter.Scores, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("exp: empty graph")
	}
	m := g.NumEdges()
	out := &filter.Scores{G: g, Score: make([]float64, m), Method: p.Name()}
	n := g.TotalWeight()
	for id, e := range g.Edges() {
		ni := g.OutStrength(int(e.Src))
		nj := g.InStrength(int(e.Dst))
		kappa := n / (ni * nj)
		score := (kappa*e.Weight - 1) / (kappa*e.Weight + 1)
		post := e.Weight / n
		varNij := n * post * (1 - post)
		dKappa := 1/(ni*nj) - n*(ni+nj)/((ni*nj)*(ni*nj))
		denom := kappa*e.Weight + 1
		deriv := 2 * (kappa + e.Weight*dKappa) / (denom * denom)
		variance := varNij * deriv * deriv
		if sd := math.Sqrt(variance); sd > 0 {
			out.Score[id] = score / sd
		} else if score > 0 {
			out.Score[id] = math.Inf(1)
		} else {
			out.Score[id] = math.Inf(-1)
		}
	}
	return out, nil
}

// AblationResult compares NC variants on the Fig-4 recovery task.
type AblationResult struct {
	Etas []float64
	// Recovery[variant][etaIdx], variants: "nc", "nc-plugin", "nc-binomial".
	Recovery map[string][]float64
}

// Ablation reruns the synthetic-recovery experiment with the full NC
// model, the plug-in variance ablation, and the footnote-2 binomial
// p-value variant.
func Ablation(ctx context.Context, cfg Fig4Config) (*AblationResult, error) {
	variants := []filter.Scorer{core.New(), pluginNC{}, core.NewBinomial()}
	res := &AblationResult{Etas: cfg.Etas, Recovery: map[string][]float64{}}
	for _, v := range variants {
		res.Recovery[v.Name()] = make([]float64, len(cfg.Etas))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ei, eta := range cfg.Etas {
		acc := map[string][]float64{}
		for rep := 0; rep < cfg.Reps; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			base := gen.BarabasiAlbert(rng, cfg.Nodes, cfg.MeanDegree/2)
			nn := gen.AddNoise(rng, base, eta)
			for _, v := range variants {
				s, err := v.Scores(nn.Noisy)
				if err != nil {
					return nil, err
				}
				bb := s.TopK(nn.NumTrue)
				acc[v.Name()] = append(acc[v.Name()], eval.Recovery(bb, base))
			}
		}
		for name, vals := range acc {
			res.Recovery[name][ei] = stats.Mean(vals)
		}
	}
	return res, nil
}

// Table renders the ablation grid.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:  "Ablation — NC design choices on the Fig-4 recovery task",
		Header: []string{"eta", "nc (full)", "nc-plugin (no Bayes)", "nc-binomial (footnote 2)"},
	}
	for ei, eta := range r.Etas {
		t.AddRow(f3(eta),
			f3(r.Recovery["nc"][ei]),
			f3(r.Recovery["nc-plugin"][ei]),
			f3(r.Recovery["nc-binomial"][ei]))
	}
	t.Notes = append(t.Notes,
		"nc-plugin drops the Beta-Binomial posterior (P̂ = N_ij/N..), the paper's key fix for sparse data;",
		"nc-binomial replaces the delta-method score with a direct binomial tail test")
	return t
}
