package exp

import (
	"context"
	"math"
	"strings"
	"testing"
)

func TestNoiseRetention(t *testing.T) {
	c := testCountry(t)
	res, err := Noise(context.Background(), c, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Networks) != 6 {
		t.Fatalf("networks = %d", len(res.Networks))
	}
	for _, net := range res.Networks {
		for _, m := range []string{"nc", "df", "nt"} {
			a := res.ArtifactShareKept[m][net]
			rc := res.RealRecall[m][net]
			if !math.IsNaN(a) && (a < 0 || a > 1) {
				t.Errorf("%s/%s artifact share out of range: %v", net, m, a)
			}
			if !math.IsNaN(rc) && (rc < 0 || rc > 1) {
				t.Errorf("%s/%s recall out of range: %v", net, m, rc)
			}
		}
		// Weight thresholds avoid low-weight artifacts almost perfectly…
		if nt := res.ArtifactShareKept["nt"][net]; !math.IsNaN(nt) && nt > res.ArtifactShareFull[net] {
			t.Errorf("%s: NT kept more artifacts (%v) than the full baseline (%v)",
				net, nt, res.ArtifactShareFull[net])
		}
	}
	if !strings.Contains(res.Table().Render(), "Noise retention") {
		t.Error("render broken")
	}
}

func TestChangesDriver(t *testing.T) {
	c := testCountry(t)
	ds := c.Datasets[0] // Business
	res, err := Changes(context.Background(), ds, 0.01, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesCompared == 0 {
		t.Fatal("no edges compared")
	}
	if res.Significant < 0 || res.Significant > res.EdgesCompared {
		t.Errorf("significant = %d of %d", res.Significant, res.EdgesCompared)
	}
	if len(res.Top) != 10 {
		t.Errorf("top = %d, want 10", len(res.Top))
	}
	// Top changes are sorted by ascending p-value.
	for i := 1; i < len(res.Top); i++ {
		if res.Top[i].PValue < res.Top[i-1].PValue {
			t.Error("top changes not sorted by p-value")
			break
		}
	}
	out := res.Table().Render()
	if !strings.Contains(out, "Business") {
		t.Error("render missing network name")
	}
}
