package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/occupations"
	"repro/internal/world"
)

// testCountry builds a small shared world once; the experiments only
// need the qualitative shapes, not the paper-scale sizes.
var testCountryCache *Country

func testCountry(t *testing.T) *Country {
	t.Helper()
	if testCountryCache == nil {
		testCountryCache = NewCountry(world.Config{Seed: 7, Countries: 70, Products: 200, Years: 3})
	}
	return testCountryCache
}

func TestMethodsRegistry(t *testing.T) {
	ms := Methods()
	if len(ms) != 6 {
		t.Fatalf("methods = %d, want 6", len(ms))
	}
	for _, m := range ms {
		if m.Scorer == nil && m.Extractor == nil {
			t.Errorf("%s has neither scorer nor extractor", m.Short)
		}
	}
	if _, err := MethodByShort("nc"); err != nil {
		t.Error(err)
	}
	if _, err := MethodByShort("bogus"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestFig3ToyExample(t *testing.T) {
	rows, err := Fig3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("toy example has %d edges, want 6", len(rows))
	}
	var e23 Fig3Row
	hubRanksNC, hubRanksDF := []int{}, []int{}
	for _, r := range rows {
		if r.Edge == "2-3" {
			e23 = r
		} else if strings.HasPrefix(r.Edge, "1-") && r.Weight == 8 {
			// pure peripheral spokes 1-4, 1-5, 1-6
			hubRanksNC = append(hubRanksNC, r.NCRank)
			hubRanksDF = append(hubRanksDF, r.DFRank)
		}
	}
	// The paper's Figure 3 claim: NC ranks 2-3 above the weak hub
	// spokes; DF ranks the hub spokes above 2-3.
	for i := range hubRanksNC {
		if e23.NCRank >= hubRanksNC[i] {
			t.Errorf("NC: 2-3 rank %d not better than hub spoke rank %d", e23.NCRank, hubRanksNC[i])
		}
		if e23.DFRank <= hubRanksDF[i] {
			t.Errorf("DF: 2-3 rank %d unexpectedly better than hub spoke rank %d", e23.DFRank, hubRanksDF[i])
		}
	}
	if Fig3Table(rows).Render() == "" {
		t.Error("empty render")
	}
}

func TestFig4RecoveryShape(t *testing.T) {
	cfg := Fig4Config{Seed: 4, Nodes: 80, MeanDegree: 3,
		Etas: []float64{0.05, 0.25}, Reps: 2}
	res, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nc := res.Recovery["nc"]
	// NC must recover most of the backbone at low noise and degrade
	// gracefully; at high noise it must beat the naive threshold and MST.
	if nc[0] < 0.6 {
		t.Errorf("NC low-noise recovery = %v, want high", nc[0])
	}
	if nc[1] <= res.Recovery["mst"][1] {
		t.Errorf("NC %v <= MST %v at high noise", nc[1], res.Recovery["mst"][1])
	}
	if nc[1] < res.Recovery["nt"][1]-0.05 {
		t.Errorf("NC %v clearly below NT %v at high noise", nc[1], res.Recovery["nt"][1])
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig2Distributions(t *testing.T) {
	c := testCountry(t)
	g := c.Datasets[1].Latest() // Country Space
	res, err := Fig2(context.Background(), "Country Space", g, []float64{1, 2, 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Higher delta shifts the distribution left: acceptance share must
	// be non-increasing in delta.
	if !(res.ShareAccepted[0] >= res.ShareAccepted[1] && res.ShareAccepted[1] >= res.ShareAccepted[2]) {
		t.Errorf("acceptance shares not monotone: %v", res.ShareAccepted)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
}

func TestFig5AndFig6(t *testing.T) {
	c := testCountry(t)
	r5 := Fig5(c)
	if len(r5.Networks) != 6 {
		t.Fatalf("fig5 networks = %d", len(r5.Networks))
	}
	if r5.Span["Trade"] < 4 {
		t.Errorf("Trade span = %v, want broad", r5.Span["Trade"])
	}
	if r5.Span["Country Space"] >= r5.Span["Trade"] {
		t.Error("Country Space should be the narrowest distribution")
	}
	r6 := Fig6(c)
	for _, name := range r6.Networks {
		if r6.Corr[name] < 0.15 {
			t.Errorf("%s local correlation = %v, want positive as in Fig 6", name, r6.Corr[name])
		}
	}
	if r5.Table().Render() == "" || r6.Table().Render() == "" {
		t.Error("empty renders")
	}
}

func TestTable1VarianceValidation(t *testing.T) {
	c := testCountry(t)
	res, err := Table1(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Networks) != 6 {
		t.Fatalf("networks = %d", len(res.Networks))
	}
	for _, name := range res.Networks {
		r := res.Corr[name]
		if math.IsNaN(r) {
			t.Errorf("%s: NaN correlation", name)
			continue
		}
		if r < 0 {
			t.Errorf("%s: negative predicted-observed correlation %v", name, r)
		}
	}
	// Paper ordering: Ownership the most predictable, Migration the least.
	if res.Corr["Ownership"] <= res.Corr["Migration"] {
		t.Errorf("Ownership %v <= Migration %v: drift calibration lost the Table-I ordering",
			res.Corr["Ownership"], res.Corr["Migration"])
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig7Coverage(t *testing.T) {
	c := testCountry(t)
	res, err := Fig7(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range res.Networks {
		nc := res.Values[net]["nc"]
		last := nc[len(nc)-1]
		if math.Abs(last-1) > 1e-9 {
			t.Errorf("%s: NC coverage at share 1.0 = %v, want 1", net, last)
		}
		// Coverage must be non-decreasing in the share kept.
		for i := 1; i < len(nc); i++ {
			if nc[i] < nc[i-1]-1e-9 {
				t.Errorf("%s: NC coverage not monotone: %v", net, nc)
				break
			}
		}
		// MST achieves perfect coverage by definition.
		if mst := res.Values[net]["mst"][0]; math.Abs(mst-1) > 1e-9 {
			t.Errorf("%s: MST coverage = %v, want 1", net, mst)
		}
	}
	// DS must be n/a (NaN) on Business, Flight, Ownership.
	for _, net := range []string{"Business", "Flight", "Ownership"} {
		if v := res.Values[net]["ds"][0]; !math.IsNaN(v) {
			t.Errorf("%s: DS coverage = %v, want n/a", net, v)
		}
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig8Stability(t *testing.T) {
	c := testCountry(t)
	res, err := Fig8(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports stability above .84 everywhere. At this reduced
	// test scale small backbones hold few edges and rank correlations
	// are noisy, so assert a softer floor on the NC backbone at the
	// larger shares, and mere existence elsewhere.
	for _, net := range res.Networks {
		for _, m := range []string{"nc", "df", "nt"} {
			vals := res.Values[net][m]
			any := false
			for _, v := range vals {
				if !math.IsNaN(v) {
					any = true
				}
			}
			if !any {
				t.Errorf("%s/%s: no stability values", net, m)
			}
		}
		nc := res.Values[net]["nc"]
		for si := len(res.Shares) - 3; si < len(res.Shares); si++ {
			if v := nc[si]; !math.IsNaN(v) && v < 0.5 {
				t.Errorf("%s: NC stability %v at share %v, want > 0.5", net, v, res.Shares[si])
			}
		}
	}
}

func TestTable2Quality(t *testing.T) {
	c := testCountry(t)
	res, err := Table2(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claims: NC quality > 1 on every network; NC beats
	// every size-tunable competitor (DF, HSS, NT) in every column; and
	// NC stays within a whisker of the parameter-free methods (MST, DS),
	// whose backbones have a different, untunable size and are therefore
	// not an equal-|E*| comparison (see EXPERIMENTS.md).
	for _, net := range res.Networks {
		ncq := res.Quality["nc"][net]
		if math.IsNaN(ncq) {
			t.Errorf("%s: NC quality is NaN", net)
			continue
		}
		if ncq <= 1 {
			t.Errorf("%s: NC quality = %v, want > 1", net, ncq)
		}
		for _, m := range res.Methods {
			if m.Short == "nc" {
				continue
			}
			q := res.Quality[m.Short][net]
			if math.IsNaN(q) {
				continue
			}
			tunable := m.Short == "df" || m.Short == "hss" || m.Short == "nt"
			if tunable && q > ncq*1.02 {
				t.Errorf("%s: %s quality %v beats NC %v", net, m.Short, q, ncq)
			}
			if !tunable && q > ncq*1.18 {
				t.Errorf("%s: %s quality %v far above NC %v", net, m.Short, q, ncq)
			}
		}
	}
	// DS must be n/a exactly on the paper's three networks.
	for _, net := range []string{"Business", "Flight", "Ownership"} {
		if !math.IsNaN(res.Quality["ds"][net]) {
			t.Errorf("%s: DS should be n/a", net)
		}
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig1CommunityRecovery(t *testing.T) {
	res, err := Fig1(context.Background(), 1, 90, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.NMIBackbone <= res.NMIFull {
		t.Errorf("backbone NMI %v <= full NMI %v: backboning did not help",
			res.NMIBackbone, res.NMIFull)
	}
	if res.NMIBackbone < 0.7 {
		t.Errorf("backbone NMI = %v, want strong recovery", res.NMIBackbone)
	}
	if res.EdgesBackbone >= res.EdgesFull {
		t.Error("backbone did not prune")
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestCaseStudyShape(t *testing.T) {
	// Scale matters: the DF-pollution mechanism needs enough small
	// occupations; 216 nodes is the smallest size with stable orderings.
	cfg := occupations.Config{Seed: 3, Majors: 6, MinorsPerMajor: 3, OccsPerMinor: 12,
		CoreSkills: 12, GenericSkills: 24}
	res, err := CaseStudy(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's qualitative findings. Node retention is near-total for
	// both methods at test scale, so allow a whisker of slack; the
	// paper-scale run (cmd/experiments casestudy) shows the full gap.
	if res.NC.NodesRetained < res.DF.NodesRetained-2 {
		t.Errorf("NC retained %d nodes < DF %d", res.NC.NodesRetained, res.DF.NodesRetained)
	}
	if res.NC.NodesRetained < res.Occupations*9/10 {
		t.Errorf("NC retained only %d of %d nodes", res.NC.NodesRetained, res.Occupations)
	}
	if res.NC.ModularityClasses <= res.DF.ModularityClasses {
		t.Errorf("NC class modularity %v <= DF %v", res.NC.ModularityClasses, res.DF.ModularityClasses)
	}
	if res.FlowCorrNC <= res.FlowCorrFull {
		t.Errorf("NC flow corr %v <= full %v", res.FlowCorrNC, res.FlowCorrFull)
	}
	if res.FlowCorrNC <= res.FlowCorrDF {
		t.Errorf("NC flow corr %v <= DF %v", res.FlowCorrNC, res.FlowCorrDF)
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestAblationBayesHelps(t *testing.T) {
	cfg := Fig4Config{Seed: 8, Nodes: 80, MeanDegree: 3, Etas: []float64{0.2}, Reps: 3}
	res, err := Ablation(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Recovery["nc"][0]
	plugin := res.Recovery["nc-plugin"][0]
	if full < plugin-0.1 {
		t.Errorf("full NC %v much worse than plug-in %v", full, plugin)
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig9SmallScale(t *testing.T) {
	cfg := Fig9Config{Seed: 1, NodeCounts: []int{500, 1000, 2000}, Reps: 1, MaxExpensiveEdges: 800}
	res, err := Fig9(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 3 {
		t.Fatalf("sizes = %d", len(res.Edges))
	}
	for _, m := range []string{"nc", "df", "nt", "mst"} {
		for si, v := range res.Seconds[m] {
			if math.IsNaN(v) {
				t.Errorf("%s missing timing at size %d", m, res.Edges[si])
			}
		}
	}
	// HSS must be skipped on the larger sizes.
	if !math.IsNaN(res.Seconds["hss"][2]) {
		t.Error("HSS was not skipped above MaxExpensiveEdges")
	}
	if res.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	out := tab.Render()
	for _, want := range []string{"T", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if f3(math.NaN()) != "n/a" || f4(math.NaN()) != "n/a" {
		t.Error("NaN formatting")
	}
}
