package exp

import (
	"repro/internal/graph"
	"repro/internal/stats"
)

// Fig5Result summarizes the cumulative edge-weight distribution of each
// network: quantiles and the weight span in orders of magnitude.
type Fig5Result struct {
	Networks []string
	// Quantiles[name] = {min, p50, p90, p99, max}.
	Quantiles map[string][5]float64
	// Span[name] is log10(max/min positive weight).
	Span map[string]float64
	// CCDFPoints[name] holds (value, P(X>=value)) pairs for plotting.
	CCDFValues, CCDFProbs map[string][]float64
}

// Fig5 computes the edge-weight CCDFs of the country networks
// (Section V-B, Figure 5: broad distributions in all networks, widest
// for Trade, narrowest for Country Space).
func Fig5(c *Country) *Fig5Result {
	res := &Fig5Result{
		Quantiles:  map[string][5]float64{},
		Span:       map[string]float64{},
		CCDFValues: map[string][]float64{},
		CCDFProbs:  map[string][]float64{},
	}
	for _, ds := range c.Datasets {
		res.Networks = append(res.Networks, ds.Name)
		g := ds.Latest()
		ws := make([]float64, 0, g.NumEdges())
		for _, e := range g.Edges() {
			ws = append(ws, e.Weight)
		}
		lo, hi := stats.MinMax(ws)
		res.Quantiles[ds.Name] = [5]float64{
			lo, stats.Median(ws), stats.Quantile(ws, 0.9), stats.Quantile(ws, 0.99), hi,
		}
		res.Span[ds.Name] = log10Ratio(hi, lo)
		v, p := stats.CCDF(ws)
		res.CCDFValues[ds.Name], res.CCDFProbs[ds.Name] = v, p
	}
	return res
}

func log10Ratio(hi, lo float64) float64 {
	if lo <= 0 || hi <= 0 {
		return 0
	}
	r := hi / lo
	l := 0.0
	for r >= 10 {
		r /= 10
		l++
	}
	return l + (r-1)/9 // coarse fractional digit, plotting aid only
}

// Table renders the distribution summary.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5 — Edge weight distributions (quantiles and span)",
		Header: []string{"Network", "min", "median", "p90", "p99", "max", "~orders of magnitude"},
	}
	for _, name := range r.Networks {
		q := r.Quantiles[name]
		t.AddRow(name, f3(q[0]), f3(q[1]), f3(q[2]), f3(q[3]), f3(q[4]), f3(r.Span[name]))
	}
	t.Notes = append(t.Notes,
		"paper shape: broad weights everywhere; Trade spans ~10 orders; Country Space is narrowest")
	return t
}

// Fig6Result holds the local weight correlation of each network: the
// log-log Pearson correlation between an edge's weight and the average
// weight of the edges incident to its endpoints.
type Fig6Result struct {
	Networks []string
	Corr     map[string]float64
}

// Fig6 measures local edge-weight correlation (Section V-B, Figure 6;
// the paper reports .42 to .75 across networks).
func Fig6(c *Country) *Fig6Result {
	res := &Fig6Result{Corr: map[string]float64{}}
	for _, ds := range c.Datasets {
		res.Networks = append(res.Networks, ds.Name)
		res.Corr[ds.Name] = LocalWeightCorrelation(ds.Latest())
	}
	return res
}

// LocalWeightCorrelation returns the log-log Pearson correlation between
// each edge's weight and the mean weight of its neighboring edges.
func LocalWeightCorrelation(g *graph.Graph) float64 {
	var own, neigh []float64
	for _, e := range g.Edges() {
		var sum float64
		var cnt int
		for _, a := range g.Out(int(e.Src)) {
			sum += a.Weight
			cnt++
		}
		for _, a := range g.In(int(e.Dst)) {
			sum += a.Weight
			cnt++
		}
		sum -= 2 * e.Weight // the edge itself appears in both lists
		cnt -= 2
		if cnt > 0 {
			own = append(own, e.Weight)
			neigh = append(neigh, sum/float64(cnt))
		}
	}
	return stats.LogLogPearson(own, neigh)
}

// Table renders the local-correlation summary.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Figure 6 — Edge weight vs average neighbor edge weight (log-log Pearson)",
		Header: []string{"Network", "correlation"},
	}
	for _, name := range r.Networks {
		t.AddRow(name, f3(r.Corr[name]))
	}
	t.Notes = append(t.Notes, "paper range: .42 (Flight) to .75 (Country Space)")
	return t
}
