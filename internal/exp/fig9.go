package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/gen"
)

// Fig9Config parameterizes the scalability experiment (Section V-G).
type Fig9Config struct {
	Seed int64
	// NodeCounts are the Erdős–Rényi sizes to time (average degree 3).
	NodeCounts []int
	// Reps averages each timing over this many runs.
	Reps int
	// MaxExpensiveEdges caps the sizes HSS and DS are run on — the paper
	// "could not run them on networks larger than a few thousand edges".
	MaxExpensiveEdges int
}

// DefaultFig9Config uses sizes that finish in seconds on a laptop while
// still exposing the scaling exponents.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Seed:              9,
		NodeCounts:        []int{25_000, 50_000, 100_000, 200_000, 400_000, 800_000},
		Reps:              3,
		MaxExpensiveEdges: 5_000,
	}
}

// Fig9Result holds seconds per (method, size).
type Fig9Result struct {
	Cfg     Fig9Config
	Methods []Method
	Edges   []int
	// Seconds[methodShort][sizeIdx]; NaN where the method was skipped.
	Seconds map[string][]float64
	// Exponent[methodShort] is the fitted slope of log(time) vs
	// log(edges) — the paper estimates ~1.14 for its NC implementation.
	Exponent map[string]float64
}

// Fig9 times every method on growing Erdős–Rényi graphs.
func Fig9(cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{
		Cfg:      cfg,
		Methods:  Methods(),
		Seconds:  map[string][]float64{},
		Exponent: map[string]float64{},
	}
	for _, m := range res.Methods {
		res.Seconds[m.Short] = make([]float64, len(cfg.NodeCounts))
		for i := range res.Seconds[m.Short] {
			res.Seconds[m.Short][i] = math.NaN()
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for si, n := range cfg.NodeCounts {
		mEdges := n * 3 / 2 // average degree 3
		g := gen.ErdosRenyiGNM(rng, n, mEdges)
		res.Edges = append(res.Edges, g.NumEdges())
		for _, m := range res.Methods {
			expensive := m.Short == "hss" || m.Short == "ds"
			if expensive && g.NumEdges() > cfg.MaxExpensiveEdges {
				continue
			}
			var total time.Duration
			ok := true
			for rep := 0; rep < cfg.Reps; rep++ {
				start := time.Now()
				if _, err := BackboneWithShare(m, g, 0.1); err != nil {
					ok = false
					break
				}
				total += time.Since(start)
			}
			if ok {
				res.Seconds[m.Short][si] = total.Seconds() / float64(cfg.Reps)
			}
		}
	}
	// Fit scaling exponents where at least three sizes were timed.
	for _, m := range res.Methods {
		var lx, ly []float64
		for si, s := range res.Seconds[m.Short] {
			if s == s && s > 0 {
				lx = append(lx, math.Log(float64(res.Edges[si])))
				ly = append(ly, math.Log(s))
			}
		}
		if len(lx) >= 3 {
			res.Exponent[m.Short] = slope(lx, ly)
		} else {
			res.Exponent[m.Short] = math.NaN()
		}
	}
	return res, nil
}

// slope returns the OLS slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Table renders the timing grid with fitted exponents.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9 — Running time scalability (seconds)",
		Header: []string{"edges"},
	}
	for _, m := range r.Methods {
		t.Header = append(t.Header, m.Short)
	}
	for si, e := range r.Edges {
		row := []string{fmt.Sprintf("%d", e)}
		for _, m := range r.Methods {
			v := r.Seconds[m.Short][si]
			if v != v {
				row = append(row, "skip")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		t.AddRow(row...)
	}
	expRow := []string{"exponent"}
	for _, m := range r.Methods {
		expRow = append(expRow, f3(r.Exponent[m.Short]))
	}
	t.AddRow(expRow...)
	t.Notes = append(t.Notes,
		"paper: NC scales ~O(|E|^1.14), indistinguishable from NT and DF up to a constant;",
		"HSS and DS become impractical beyond a few thousand edges and are skipped there")
	return t
}
