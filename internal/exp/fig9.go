package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/filter"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Fig9Config parameterizes the scalability experiment (Section V-G).
type Fig9Config struct {
	Seed int64
	// NodeCounts are the Erdős–Rényi sizes to time (average degree 3).
	NodeCounts []int
	// Reps averages each timing over this many runs.
	Reps int
	// MaxExpensiveEdges caps the sizes HSS and DS are run on — the paper
	// "could not run them on networks larger than a few thousand edges".
	MaxExpensiveEdges int
}

// DefaultFig9Config uses sizes that finish in seconds on a laptop while
// still exposing the scaling exponents.
func DefaultFig9Config() Fig9Config {
	return Fig9Config{
		Seed:              9,
		NodeCounts:        []int{25_000, 50_000, 100_000, 200_000, 400_000, 800_000},
		Reps:              3,
		MaxExpensiveEdges: 5_000,
	}
}

// Fig9Result holds seconds per (method, size).
type Fig9Result struct {
	Cfg     Fig9Config
	Methods []Method
	Edges   []int
	// Seconds[methodShort][sizeIdx]; NaN where the method was skipped.
	Seconds map[string][]float64
	// Exponent[methodShort] is the fitted slope of log(time) vs
	// log(edges) — the paper estimates ~1.14 for its NC implementation.
	Exponent map[string]float64
	// BuildSeconds[sizeIdx] times the graph substrate itself: rebuilding
	// the CSR graph from its canonical edge list (sort + merge + CSR
	// assembly). The engine-speed floor under every method.
	BuildSeconds []float64
	// ExtractSeconds[sizeIdx] times backbone extraction alone: pruning a
	// precomputed NC score table to its top 10% of edges (selection +
	// subgraph assembly, no scoring).
	ExtractSeconds []float64
}

// Fig9 times every method on growing Erdős–Rényi graphs, checking the
// context between sizes and between methods so Ctrl-C lands promptly
// even mid-sweep.
func Fig9(ctx context.Context, cfg Fig9Config) (*Fig9Result, error) {
	res := &Fig9Result{
		Cfg:      cfg,
		Methods:  Methods(),
		Seconds:  map[string][]float64{},
		Exponent: map[string]float64{},
	}
	for _, m := range res.Methods {
		res.Seconds[m.Short] = make([]float64, len(cfg.NodeCounts))
		for i := range res.Seconds[m.Short] {
			res.Seconds[m.Short][i] = math.NaN()
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for si, n := range cfg.NodeCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mEdges := n * 3 / 2 // average degree 3
		g := gen.ErdosRenyiGNM(rng, n, mEdges)
		res.Edges = append(res.Edges, g.NumEdges())
		build, extract, err := timeBuildExtract(g, cfg.Reps)
		if err != nil {
			return nil, err
		}
		res.BuildSeconds = append(res.BuildSeconds, build)
		res.ExtractSeconds = append(res.ExtractSeconds, extract)
		for _, m := range res.Methods {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			expensive := m.Short == "hss" || m.Short == "ds"
			if expensive && g.NumEdges() > cfg.MaxExpensiveEdges {
				continue
			}
			var total time.Duration
			ok := true
			for rep := 0; rep < cfg.Reps; rep++ {
				start := time.Now()
				if _, err := BackboneWithShare(m, g, 0.1); err != nil {
					ok = false
					break
				}
				total += time.Since(start)
			}
			if ok {
				res.Seconds[m.Short][si] = total.Seconds() / float64(cfg.Reps)
			}
		}
	}
	// Fit scaling exponents where at least three sizes were timed.
	for _, m := range res.Methods {
		var lx, ly []float64
		for si, s := range res.Seconds[m.Short] {
			if s == s && s > 0 {
				lx = append(lx, math.Log(float64(res.Edges[si])))
				ly = append(ly, math.Log(s))
			}
		}
		if len(lx) >= 3 {
			res.Exponent[m.Short] = slope(lx, ly)
		} else {
			res.Exponent[m.Short] = math.NaN()
		}
	}
	return res, nil
}

// timeBuildExtract times the two engine primitives under every method:
// rebuilding the graph from its canonical edge list, and pruning a
// precomputed NC score table to a top-10% backbone. Both are averaged
// over reps runs.
func timeBuildExtract(g *graph.Graph, reps int) (build, extract float64, err error) {
	if reps < 1 {
		reps = 1
	}
	var s *filter.Scores
	m, err := MethodByShort("nc")
	if err != nil {
		return 0, 0, err
	}
	if s, err = m.Scorer.Scores(g); err != nil {
		return 0, 0, err
	}
	var tBuild, tExtract time.Duration
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		graph.FromEdges(g.Directed(), g.NumNodes(), g.Edges())
		tBuild += time.Since(start)

		start = time.Now()
		s.TopFraction(0.1)
		tExtract += time.Since(start)
	}
	return tBuild.Seconds() / float64(reps), tExtract.Seconds() / float64(reps), nil
}

// slope returns the OLS slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Table renders the timing grid with fitted exponents.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title:  "Figure 9 — Running time scalability (seconds)",
		Header: []string{"edges"},
	}
	for _, m := range r.Methods {
		t.Header = append(t.Header, m.Short)
	}
	t.Header = append(t.Header, "build", "extract")
	for si, e := range r.Edges {
		row := []string{fmt.Sprintf("%d", e)}
		for _, m := range r.Methods {
			v := r.Seconds[m.Short][si]
			if v != v {
				row = append(row, "skip")
			} else {
				row = append(row, fmt.Sprintf("%.4f", v))
			}
		}
		row = append(row,
			fmt.Sprintf("%.4f", r.BuildSeconds[si]),
			fmt.Sprintf("%.4f", r.ExtractSeconds[si]))
		t.AddRow(row...)
	}
	expRow := []string{"exponent"}
	for _, m := range r.Methods {
		expRow = append(expRow, f3(r.Exponent[m.Short]))
	}
	expRow = append(expRow, "—", "—")
	t.AddRow(expRow...)
	t.Notes = append(t.Notes,
		"paper: NC scales ~O(|E|^1.14), indistinguishable from NT and DF up to a constant;",
		"HSS and DS become impractical beyond a few thousand edges and are skipped there;",
		"build = CSR graph assembly from the canonical edge list, extract = top-10% NC pruning")
	return t
}
