package exp

import (
	"context"
	"math"
	"math/rand"
	"strconv"

	"repro/internal/backbone"
	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/occupations"
	"repro/internal/stats"
)

// CaseStudyResult reports the Section-VI skill-relatedness case study,
// comparing NC and DF backbones of the occupation co-occurrence network.
type CaseStudyResult struct {
	Occupations int
	EdgesFull   int
	// Per backbone: edge count, nodes retained, codelength without/with
	// Infomap communities, modularity of the 2-digit classes, NMI of
	// Infomap communities vs the 2-digit classes.
	NC, DF CaseStudySide
	// FlowCorrFull/DF/NC are the flow-prediction correlations of the
	// model F_ij = b1 C_ij + b2 S_i. + b3 S_.j on all pairs and on the
	// pairs each backbone keeps (paper: 0.390 / 0.431 / 0.454).
	FlowCorrFull, FlowCorrDF, FlowCorrNC float64
}

// CaseStudySide holds the metrics of one method's backbone.
type CaseStudySide struct {
	Edges, NodesRetained                int
	CodelengthFlat, CodelengthCommunity float64
	CodelengthGainPct                   float64
	ModularityClasses                   float64
	NMICommunitiesVsClasses             float64
}

// CaseStudy runs the full Section-VI pipeline on a synthetic occupation
// world: extract NC and DF backbones of roughly equal size from the
// skill co-occurrence network, compare their topology, community
// structure and usefulness for predicting labor flows.
func CaseStudy(ctx context.Context, cfg occupations.Config) (*CaseStudyResult, error) {
	d := occupations.Generate(cfg)
	g := d.CoOccurrence

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nc := core.New()
	df := backbone.NewDisparity()
	sNC, err := nc.Scores(g)
	if err != nil {
		return nil, err
	}
	sDF, err := df.Scores(g)
	if err != nil {
		return nil, err
	}
	// "The two networks have roughly the same number of connections":
	// take the NC backbone at delta = 2.32 and cut DF to the same size.
	bbNC := sNC.Threshold(2.32)
	k := bbNC.NumEdges()
	if k < g.NumNodes() {
		k = g.NumNodes() * 2
		bbNC = sNC.TopK(k)
	}
	bbDF := sDF.TopK(k)

	res := &CaseStudyResult{
		Occupations: d.NumOccupations(),
		EdgesFull:   g.NumEdges(),
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.NC, err = sideMetrics(bbNC, d, 101)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.DF, err = sideMetrics(bbDF, d, 202)
	if err != nil {
		return nil, err
	}

	res.FlowCorrFull = flowCorr(d, d.AllPairs())
	res.FlowCorrNC = flowCorr(d, occupations.PairsFromBackbone(bbNC))
	res.FlowCorrDF = flowCorr(d, occupations.PairsFromBackbone(bbDF))
	return res, nil
}

func sideMetrics(bb *graph.Graph, d *occupations.Data, seed int64) (CaseStudySide, error) {
	var s CaseStudySide
	s.Edges = bb.NumEdges()
	s.NodesRetained = bb.NumConnected()
	one := make([]int, bb.NumNodes())
	s.CodelengthFlat = community.CodeLength(bb, one)
	part := community.Infomap(bb, rand.New(rand.NewSource(seed)))
	s.CodelengthCommunity = community.CodeLength(bb, part)
	if s.CodelengthFlat > 0 {
		s.CodelengthGainPct = 100 * (s.CodelengthFlat - s.CodelengthCommunity) / s.CodelengthFlat
	}
	s.ModularityClasses = community.Modularity(bb, d.Minor)
	s.NMICommunitiesVsClasses = community.NMI(part, d.Minor)
	return s, nil
}

// flowCorr fits the case study's linear flow model on the given pairs
// and returns the prediction correlation sqrt(R²).
func flowCorr(d *occupations.Data, pairs [][2]int) float64 {
	if len(pairs) < 8 {
		return math.NaN()
	}
	y, xs := d.FlowDesign(pairs)
	res, err := stats.OLS(y, xs...)
	if err != nil {
		return math.NaN()
	}
	return math.Sqrt(math.Max(0, res.R2))
}

// Table renders the case-study comparison next to the paper's values.
func (r *CaseStudyResult) Table() *Table {
	t := &Table{
		Title:  "Case study (Section VI) — NC vs DF on the occupation skill network",
		Header: []string{"metric", "NC", "DF", "paper NC", "paper DF"},
	}
	t.AddRow("edges in backbone", strconv.Itoa(r.NC.Edges), strconv.Itoa(r.DF.Edges), "~equal", "~equal")
	t.AddRow("nodes retained", strconv.Itoa(r.NC.NodesRetained), strconv.Itoa(r.DF.NodesRetained), "all", "~50 dropped")
	t.AddRow("codelength flat (bits)", f3(r.NC.CodelengthFlat), f3(r.DF.CodelengthFlat), "7.97", "7.69")
	t.AddRow("codelength with communities", f3(r.NC.CodelengthCommunity), f3(r.DF.CodelengthCommunity), "6.78", "6.98")
	t.AddRow("codelength gain %", f3(r.NC.CodelengthGainPct), f3(r.DF.CodelengthGainPct), "15.0", "9.3")
	t.AddRow("modularity of 2-digit classes", f3(r.NC.ModularityClasses), f3(r.DF.ModularityClasses), "0.192", "0.115")
	t.AddRow("NMI communities vs classes", f3(r.NC.NMICommunitiesVsClasses), f3(r.DF.NMICommunitiesVsClasses), "0.423", "0.401")
	t.AddRow("flow corr (all pairs)", f3(r.FlowCorrFull), f3(r.FlowCorrFull), "0.390", "0.390")
	t.AddRow("flow corr (backbone pairs)", f3(r.FlowCorrNC), f3(r.FlowCorrDF), "0.454", "0.431")
	t.Notes = append(t.Notes,
		"paper shape: NC retains more nodes, compresses better under Infomap,",
		"aligns better with the expert classification, and predicts flows best")
	return t
}
