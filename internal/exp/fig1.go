package exp

import (
	"context"
	"math/rand"
	"strconv"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/gen"
)

// Fig1Result reports the motivating demonstration of Figure 1: a dense
// noisy network whose planted communities only become recoverable after
// backboning.
type Fig1Result struct {
	Nodes, EdgesFull, EdgesBackbone int
	// CommunitiesFull and CommunitiesBackbone count the modules found by
	// community discovery before and after backboning.
	CommunitiesFull, CommunitiesBackbone int
	// NMIFull and NMIBackbone compare discovered communities with the
	// planted ground truth.
	NMIFull, NMIBackbone float64
}

// Fig1 plants k communities, floods the graph with noise edges until
// nearly every pair is connected (the paper's 151-node network has
// "virtually every possible connection expressed"), and compares
// community recovery on the hairball versus on its NC backbone. The
// context is checked between the expensive phases (generation, each
// community search, backboning).
func Fig1(ctx context.Context, seed int64, n, k int) (*Fig1Result, error) {
	rng := rand.New(rand.NewSource(seed))
	base, truth := gen.PlantedPartition(rng, n, k, 0.3, 0.02)
	noisy := gen.AddNoise(rng, base, 0.9)
	g := noisy.Noisy

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full := community.Louvain(g, rand.New(rand.NewSource(seed+1)))
	bb, err := core.New().Backbone(g, 2.32)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	found := community.Louvain(bb, rand.New(rand.NewSource(seed+2)))

	return &Fig1Result{
		Nodes:               n,
		EdgesFull:           g.NumEdges(),
		EdgesBackbone:       bb.NumEdges(),
		CommunitiesFull:     countLabels(full),
		CommunitiesBackbone: countLabels(found),
		NMIFull:             community.NMI(full, truth),
		NMIBackbone:         community.NMI(found, truth),
	}, nil
}

func countLabels(part []int) int {
	seen := map[int]bool{}
	for _, c := range part {
		seen[c] = true
	}
	return len(seen)
}

// Table renders the before/after comparison.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		Title:  "Figure 1 — Community recovery on a noisy hairball, before vs after NC backboning",
		Header: []string{"", "full network", "NC backbone"},
	}
	t.AddRow("edges", strconv.Itoa(r.EdgesFull), strconv.Itoa(r.EdgesBackbone))
	t.AddRow("communities found", strconv.Itoa(r.CommunitiesFull), strconv.Itoa(r.CommunitiesBackbone))
	t.AddRow("NMI vs planted truth", f3(r.NMIFull), f3(r.NMIBackbone))
	t.Notes = append(t.Notes,
		"paper: on the raw hairball, community discovery lumps all nodes together;",
		"the backbone makes the ground-truth classes recoverable")
	return t
}
