package exp

import (
	"context"
	"math"

	"repro/internal/graph"
)

// NoiseResult reports, per method and network, what share of the kept
// edges are known measurement artifacts — a diagnostic the synthetic
// world makes possible because it tracks where it injected noise.
// This experiment has no direct counterpart table in the paper, but it
// quantifies the mechanism behind Table II: methods that retain
// artifacts hand unexplainable observations to the regression.
type NoiseResult struct {
	Networks []string
	Methods  []Method
	// ArtifactShareKept[method][network] is |kept ∩ spurious| / |kept| —
	// the false-positive side of the tradeoff.
	ArtifactShareKept map[string]map[string]float64
	// RealRecall[method][network] is the share of the network's real
	// (non-artifact) edges the backbone keeps, weighted by nothing —
	// the false-negative side. A weight threshold avoids artifacts
	// trivially but pays for it here, losing every weak real edge.
	RealRecall map[string]map[string]float64
	// ArtifactShareFull[network] is the artifact share in the full
	// network, the baseline a random filter would achieve.
	ArtifactShareFull map[string]float64
	// Share is the backbone size used (share of edges).
	Share float64
}

// Noise measures artifact retention at a fixed backbone share,
// checking the context between networks.
func Noise(ctx context.Context, c *Country, share float64) (*NoiseResult, error) {
	res := &NoiseResult{
		Methods:           Methods(),
		ArtifactShareKept: map[string]map[string]float64{},
		ArtifactShareFull: map[string]float64{},
		Share:             share,
	}
	res.RealRecall = map[string]map[string]float64{}
	for _, m := range res.Methods {
		res.ArtifactShareKept[m.Short] = map[string]float64{}
		res.RealRecall[m.Short] = map[string]float64{}
	}
	for _, ds := range c.Datasets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Networks = append(res.Networks, ds.Name)
		full := ds.Latest()
		spur := ds.Spurious[len(ds.Spurious)-1]
		isArtifact := func(g *graph.Graph, e graph.Edge) bool {
			k := g.Key(e)
			return spur[k] || spur[graph.EdgeKey{U: k.V, V: k.U}]
		}
		nArt := 0
		for _, e := range full.Edges() {
			if isArtifact(full, e) {
				nArt++
			}
		}
		nReal := full.NumEdges() - nArt
		res.ArtifactShareFull[ds.Name] = float64(nArt) / float64(full.NumEdges())
		for _, m := range res.Methods {
			bb, err := BackboneWithShare(m, full, share)
			if err != nil {
				res.ArtifactShareKept[m.Short][ds.Name] = math.NaN()
				res.RealRecall[m.Short][ds.Name] = math.NaN()
				continue
			}
			kept, art := 0, 0
			for _, e := range bb.Edges() {
				kept++
				if isArtifact(bb, e) {
					art++
				}
			}
			if kept == 0 {
				res.ArtifactShareKept[m.Short][ds.Name] = math.NaN()
				res.RealRecall[m.Short][ds.Name] = math.NaN()
				continue
			}
			res.ArtifactShareKept[m.Short][ds.Name] = float64(art) / float64(kept)
			if nReal > 0 {
				res.RealRecall[m.Short][ds.Name] = float64(kept-art) / float64(nReal)
			} else {
				res.RealRecall[m.Short][ds.Name] = math.NaN()
			}
		}
	}
	return res, nil
}

// Table renders artifact retention per method.
func (r *NoiseResult) Table() *Table {
	t := &Table{
		Title:  "Noise retention — share of known measurement artifacts kept in the backbone",
		Header: []string{"Method"},
	}
	t.Header = append(t.Header, r.Networks...)
	t.AddRow(append([]string{"(full network)"}, func() []string {
		var cells []string
		for _, n := range r.Networks {
			cells = append(cells, f3(r.ArtifactShareFull[n]))
		}
		return cells
	}()...)...)
	for _, m := range r.Methods {
		row := []string{m.Name}
		for _, n := range r.Networks {
			row = append(row, f3(r.ArtifactShareKept[m.Short][n])+"/"+f3(r.RealRecall[m.Short][n]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"cells are artifactShare/realRecall: share of kept edges that are artifacts (lower",
		"is better) and share of real edges retained (higher is better) — the two sides of",
		"the filtering tradeoff; weight thresholds avoid artifacts but lose weak real edges",
		"artifacts are tracked by the synthetic generators (world.Dataset.Spurious)")
	return t
}
