// Package exp implements one driver per table and figure of the paper's
// evaluation (Section V and the Section VI case study). Each driver
// returns structured results plus a rendered text table, so the same
// code backs the cmd/experiments binary, the root benchmark suite, and
// the integration tests.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	// Notes are printed under the table (substitutions, parameters).
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var sb strings.Builder
	sb.WriteString(t.Title)
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat("=", len(t.Title)))
	sb.WriteByte('\n')
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s", widths[i], c)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// f3 formats a float with three decimals; NaN renders as "n/a".
func f3(v float64) string {
	if v != v {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// f4 formats a float with four decimals; NaN renders as "n/a".
func f4(v float64) string {
	if v != v {
		return "n/a"
	}
	return fmt.Sprintf("%.4f", v)
}
