package exp

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Table1Result reports the validation experiment of Section V-C: the
// correlation between the NC-predicted edge variance and the variance
// actually observed across the observation years.
type Table1Result struct {
	Networks []string
	// Corr[name] is Pearson(predicted V[L̃], observed Var(L̃)) over edges.
	Corr map[string]float64
}

// Table1 validates the NC variance model on every country network. For
// each edge present in the first observation year it takes the
// predicted variance of the transformed lift from the Bayesian model,
// then measures the realized variance of that edge's transformed lift
// over all years, and correlates the two across edges.
func Table1(ctx context.Context, c *Country) (*Table1Result, error) {
	nc := core.New()
	res := &Table1Result{Corr: map[string]float64{}}
	for _, ds := range c.Datasets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Networks = append(res.Networks, ds.Name)

		base := ds.Years[0]
		sBase, err := nc.Scores(base)
		if err != nil {
			return nil, err
		}
		// Transformed lift of every base edge in every year.
		perYear := make([]map[graph.EdgeKey]float64, len(ds.Years))
		for yi, g := range ds.Years {
			s, err := nc.Scores(g)
			if err != nil {
				return nil, err
			}
			m := make(map[graph.EdgeKey]float64, g.NumEdges())
			for id, e := range g.Edges() {
				m[g.Key(e)] = s.Aux["nc_score"][id]
			}
			perYear[yi] = m
		}
		var predicted, observed []float64
		for id, e := range base.Edges() {
			key := base.Key(e)
			scores := make([]float64, 0, len(ds.Years))
			present := true
			for _, m := range perYear {
				v, ok := m[key]
				if !ok {
					// The variance of an edge is only observable on edges
					// measured in every year; transient edges would force
					// an arbitrary imputation at the L̃ = -1 saturation
					// point, which the delta method cannot represent.
					present = false
					break
				}
				scores = append(scores, v)
			}
			if !present {
				continue
			}
			v := stats.Variance(scores)
			if v != v {
				continue
			}
			predicted = append(predicted, math.Sqrt(sBase.Aux["variance"][id]))
			observed = append(observed, math.Sqrt(v))
		}
		res.Corr[ds.Name] = stats.Pearson(predicted, observed)
	}
	return res, nil
}

// Table renders the validation correlations alongside the paper's.
func (r *Table1Result) Table() *Table {
	paper := map[string]float64{
		"Business": 0.590, "Country Space": 0.627, "Flight": 0.613,
		"Migration": 0.064, "Ownership": 0.872, "Trade": 0.162,
	}
	t := &Table{
		Title:  "Table I — Correlation between predicted and observed edge-weight variance (NC)",
		Header: []string{"Network", "measured corr", "paper corr"},
	}
	for _, name := range r.Networks {
		t.AddRow(name, f3(r.Corr[name]), f3(paper[name]))
	}
	t.Notes = append(t.Notes,
		"predicted: Bayesian delta-method std dev of the transformed lift, first year",
		"observed: realized std dev of the transformed lift across observation years",
		"correlation computed on the std-dev scale (monotone in variance; tames heavy-tail outliers)")
	return t
}
