package exp

import (
	"context"
	"math"

	"repro/internal/eval"
	"repro/internal/stats"
)

// SweepShares is the backbone-size grid of the paper's sweep figures.
var SweepShares = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}

// SweepResult holds one metric per (network, method, share).
type SweepResult struct {
	Title    string
	Metric   string
	Networks []string
	Methods  []Method
	Shares   []float64
	// Values[network][methodShort][shareIdx]; NaN for infeasible points.
	// Fixed-size methods fill only index 0 (their single operating point).
	Values map[string]map[string][]float64
	// FixedShare[network][methodShort] is the actual edge share of
	// parameter-free backbones (MST, DS).
	FixedShare map[string]map[string]float64
}

func newSweepResult(title, metric string) *SweepResult {
	return &SweepResult{
		Title:      title,
		Metric:     metric,
		Methods:    Methods(),
		Shares:     SweepShares,
		Values:     map[string]map[string][]float64{},
		FixedShare: map[string]map[string]float64{},
	}
}

func (r *SweepResult) initNetwork(name string) {
	r.Networks = append(r.Networks, name)
	r.Values[name] = map[string][]float64{}
	r.FixedShare[name] = map[string]float64{}
	for _, m := range r.Methods {
		vals := make([]float64, len(r.Shares))
		for i := range vals {
			vals[i] = math.NaN()
		}
		r.Values[name][m.Short] = vals
	}
}

// shareMethods returns the method shorts to grade at share index si:
// every method at the first share, only the size-tunable ones after
// (fixed-size methods are single points in the paper's sweeps).
func (r *SweepResult) shareMethods(si int) []string {
	var names []string
	for _, m := range r.Methods {
		if m.FixedSize && si > 0 {
			continue
		}
		names = append(names, m.Short)
	}
	return names
}

// Fig7 measures Coverage — the share of originally non-isolated nodes
// the backbone keeps non-isolated — as a function of the share of edges
// kept, per method and network (Section V-D). Each grid point is one
// size-matched eval.Compare run.
func Fig7(ctx context.Context, c *Country) (*SweepResult, error) {
	res := newSweepResult("Figure 7 — Coverage per backbone for varying threshold values", "coverage")
	for _, ds := range c.Datasets {
		res.initNetwork(ds.Name)
		full := ds.Latest()
		for si, share := range res.Shares {
			grades, err := eval.Compare(ctx, full, eval.Config{
				Methods: res.shareMethods(si),
				Frac:    share, FracSet: true,
			})
			if err != nil {
				return nil, err
			}
			for _, me := range grades.Methods {
				if me.Err != "" {
					continue // infeasible (DS n/a): leave NaN
				}
				if m, _ := MethodByShort(me.Method); m.FixedSize {
					res.FixedShare[ds.Name][me.Method] = float64(me.Edges) / float64(full.NumEdges())
				}
				res.Values[ds.Name][me.Method][si] = float64(me.Coverage)
			}
		}
	}
	return res, nil
}

// Fig8 measures Stability — the Spearman correlation between backbone
// edge weights at t and the same pairs' weights at t+1, averaged over
// consecutive year pairs — as a function of the share of edges kept
// (Section V-F). Each (share, year-pair) cell is one eval.Compare run
// with the next year as the stability snapshot; the cross-year weight
// join runs as a CSR merge-walk inside the engine.
func Fig8(ctx context.Context, c *Country) (*SweepResult, error) {
	res := newSweepResult("Figure 8 — Stability per backbone for varying threshold values", "stability")
	for _, ds := range c.Datasets {
		res.initNetwork(ds.Name)
		for si, share := range res.Shares {
			names := res.shareMethods(si)
			perMethod := map[string][]float64{}
			infeasible := map[string]bool{}
			for yi := 0; yi+1 < len(ds.Years); yi++ {
				grades, err := eval.Compare(ctx, ds.Years[yi], eval.Config{
					Methods: names,
					Frac:    share, FracSet: true,
					Next: ds.Years[yi+1],
				})
				if err != nil {
					return nil, err
				}
				for _, me := range grades.Methods {
					if me.Err != "" {
						// Failing on any year pair leaves the whole cell n/a
						// (a partial-year mean would not be the figure's
						// metric) — the pre-engine drivers did the same.
						infeasible[me.Method] = true
						continue
					}
					if m, _ := MethodByShort(me.Method); m.FixedSize && yi == 0 {
						res.FixedShare[ds.Name][me.Method] = float64(me.Edges) / float64(ds.Years[yi].NumEdges())
					}
					perMethod[me.Method] = append(perMethod[me.Method], float64(me.Stability))
				}
			}
			for short, vals := range perMethod {
				if infeasible[short] {
					continue // stays NaN
				}
				res.Values[ds.Name][short][si] = stats.MeanNonNaN(vals)
			}
		}
	}
	return res, nil
}

// Table renders a sweep grid: one block of rows per network.
func (r *SweepResult) Table() *Table {
	t := &Table{Title: r.Title, Header: []string{"Network", "share"}}
	for _, m := range r.Methods {
		t.Header = append(t.Header, m.Short)
	}
	for _, net := range r.Networks {
		for si, share := range r.Shares {
			row := []string{net, f3(share)}
			for _, m := range r.Methods {
				if m.FixedSize && si > 0 {
					row = append(row, "")
					continue
				}
				row = append(row, f3(r.Values[net][m.Short][si]))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"mst/ds are parameter-free: reported once, at their own backbone size (n/a where infeasible)")
	return t
}
