package exp

import (
	"math"

	"repro/internal/eval"
	"repro/internal/stats"
)

// SweepShares is the backbone-size grid of the paper's sweep figures.
var SweepShares = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}

// SweepResult holds one metric per (network, method, share).
type SweepResult struct {
	Title    string
	Metric   string
	Networks []string
	Methods  []Method
	Shares   []float64
	// Values[network][methodShort][shareIdx]; NaN for infeasible points.
	// Fixed-size methods fill only index 0 (their single operating point).
	Values map[string]map[string][]float64
	// FixedShare[network][methodShort] is the actual edge share of
	// parameter-free backbones (MST, DS).
	FixedShare map[string]map[string]float64
}

func newSweepResult(title, metric string) *SweepResult {
	return &SweepResult{
		Title:      title,
		Metric:     metric,
		Methods:    Methods(),
		Shares:     SweepShares,
		Values:     map[string]map[string][]float64{},
		FixedShare: map[string]map[string]float64{},
	}
}

func (r *SweepResult) initNetwork(name string) {
	r.Networks = append(r.Networks, name)
	r.Values[name] = map[string][]float64{}
	r.FixedShare[name] = map[string]float64{}
	for _, m := range r.Methods {
		vals := make([]float64, len(r.Shares))
		for i := range vals {
			vals[i] = math.NaN()
		}
		r.Values[name][m.Short] = vals
	}
}

// Fig7 measures Coverage — the share of originally non-isolated nodes
// the backbone keeps non-isolated — as a function of the share of edges
// kept, per method and network (Section V-D).
func Fig7(c *Country) (*SweepResult, error) {
	res := newSweepResult("Figure 7 — Coverage per backbone for varying threshold values", "coverage")
	for _, ds := range c.Datasets {
		res.initNetwork(ds.Name)
		full := ds.Latest()
		for _, m := range res.Methods {
			for si, share := range res.Shares {
				if m.FixedSize && si > 0 {
					break
				}
				bb, err := BackboneWithShare(m, full, share)
				if err != nil {
					break // infeasible (DS n/a): leave NaN
				}
				if m.FixedSize {
					res.FixedShare[ds.Name][m.Short] = float64(bb.NumEdges()) / float64(full.NumEdges())
				}
				res.Values[ds.Name][m.Short][si] = eval.Coverage(full, bb)
			}
		}
	}
	return res, nil
}

// Fig8 measures Stability — the Spearman correlation between backbone
// edge weights at t and the same pairs' weights at t+1, averaged over
// consecutive year pairs — as a function of the share of edges kept
// (Section V-F).
func Fig8(c *Country) (*SweepResult, error) {
	res := newSweepResult("Figure 8 — Stability per backbone for varying threshold values", "stability")
	for _, ds := range c.Datasets {
		res.initNetwork(ds.Name)
		for _, m := range res.Methods {
			for si, share := range res.Shares {
				if m.FixedSize && si > 0 {
					break
				}
				var stab []float64
				infeasible := false
				for yi := 0; yi+1 < len(ds.Years); yi++ {
					g0, g1 := ds.Years[yi], ds.Years[yi+1]
					bb, err := BackboneWithShare(m, g0, share)
					if err != nil {
						infeasible = true
						break
					}
					if m.FixedSize && yi == 0 {
						res.FixedShare[ds.Name][m.Short] = float64(bb.NumEdges()) / float64(g0.NumEdges())
					}
					var cur, nxt []float64
					for _, e := range bb.Edges() {
						cur = append(cur, e.Weight)
						nxt = append(nxt, weightIn(g1, bb, e))
					}
					if s := stats.Spearman(cur, nxt); s == s {
						stab = append(stab, s)
					}
				}
				if infeasible {
					break
				}
				if len(stab) > 0 {
					res.Values[ds.Name][m.Short][si] = stats.Mean(stab)
				}
			}
		}
	}
	return res, nil
}

// Table renders a sweep grid: one block of rows per network.
func (r *SweepResult) Table() *Table {
	t := &Table{Title: r.Title, Header: []string{"Network", "share"}}
	for _, m := range r.Methods {
		t.Header = append(t.Header, m.Short)
	}
	for _, net := range r.Networks {
		for si, share := range r.Shares {
			row := []string{net, f3(share)}
			for _, m := range r.Methods {
				if m.FixedSize && si > 0 {
					row = append(row, "")
					continue
				}
				row = append(row, f3(r.Values[net][m.Short][si]))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"mst/ds are parameter-free: reported once, at their own backbone size (n/a where infeasible)")
	return t
}
