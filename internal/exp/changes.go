package exp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/world"
)

// ChangesResult reports the significant-change detection demo on one
// country network — the paper's Section-VII future-work item
// ("whether it is possible to distinguish real from spurious changes
// in networks"), built on the NC confidence intervals.
type ChangesResult struct {
	Network       string
	EdgesCompared int
	Significant   int
	Alpha         float64
	// Top holds the most significant changes, strongest first.
	Top []core.EdgeChange
	// Labels resolves node IDs for rendering.
	Labels []string
}

// Changes runs NC change detection between the first and last
// observation years of a dataset.
func Changes(ctx context.Context, ds *world.Dataset, alpha float64, top int) (*ChangesResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	before := ds.Years[0]
	after := ds.Latest()
	all, err := core.Changes(before, after, 1)
	if err != nil {
		return nil, err
	}
	sig := 0
	for _, ch := range all {
		if ch.PValue <= alpha {
			sig++
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].PValue < all[b].PValue })
	if top > len(all) {
		top = len(all)
	}
	return &ChangesResult{
		Network:       ds.Name,
		EdgesCompared: len(all),
		Significant:   sig,
		Alpha:         alpha,
		Top:           all[:top],
		Labels:        before.Labels(),
	}, nil
}

// Table renders the strongest changes.
func (r *ChangesResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Change detection — %s, first vs last year (%d of %d pairs significant at alpha %g)",
			r.Network, r.Significant, r.EdgesCompared, r.Alpha),
		Header: []string{"edge", "w before", "w after", "score before", "score after", "z", "p"},
	}
	name := func(id int32) string {
		if int(id) < len(r.Labels) && r.Labels[id] != "" {
			return r.Labels[id]
		}
		return fmt.Sprint(id)
	}
	for _, ch := range r.Top {
		t.AddRow(
			name(ch.Key.U)+"->"+name(ch.Key.V),
			f3(ch.WeightBefore), f3(ch.WeightAfter),
			f3(ch.ScoreBefore), f3(ch.ScoreAfter),
			f3(ch.Z), f4(ch.PValue),
		)
	}
	t.Notes = append(t.Notes,
		"changes are tested on the noise-corrected score scale: weight swings on thin",
		"edges are measurement noise; modest shifts on well-measured edges are evidence")
	return t
}
