package exp

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/graph"

	// The algorithm packages self-register their methods; the blank
	// imports guarantee registration even though other files in this
	// package also import them by name.
	_ "repro/internal/backbone"
	_ "repro/internal/core"
)

// Method is the experiment harness's view of one registry entry: the
// display name used in the paper's tables plus the capabilities the
// sweeps need (ranked scoring for fixed-size comparisons, parameter-free
// extraction, fixed-size marking).
type Method struct {
	// Name is the display name used in the paper's tables.
	Name string
	// Short is the identifier used on the command line ("nc", "df", ...).
	Short string
	// Scorer is nil for purely parameter-free methods (MST).
	Scorer filter.Scorer
	// Extractor is nil for threshold-only methods.
	Extractor filter.Extractor
	// FixedSize marks methods whose backbone size cannot be tuned
	// (MST and the connectivity-stopping DS), which appear as single
	// points in the paper's sweep figures.
	FixedSize bool
}

// paperOrder lists the six algorithms of the paper's comparison in its
// presentation order.
var paperOrder = []string{"nc", "df", "hss", "ds", "mst", "nt"}

func fromRegistry(m *filter.Method) Method {
	return Method{
		Name:      m.Title,
		Short:     m.Name,
		Scorer:    m.Scorer,
		Extractor: m.Extractor,
		FixedSize: m.FixedSize,
	}
}

// Methods returns the six algorithms in the paper's comparison, looked
// up from the central method registry, in the paper's presentation
// order: NC, DF, HSS, DS, MST, NT.
func Methods() []Method {
	ms := make([]Method, 0, len(paperOrder))
	for _, short := range paperOrder {
		fm, err := filter.Lookup(short)
		if err != nil {
			// The registry is populated by package init; a missing paper
			// method is a programming error, not a runtime condition.
			panic(fmt.Sprintf("exp: paper method missing from registry: %v", err))
		}
		ms = append(ms, fromRegistry(fm))
	}
	return ms
}

// MethodByShort returns the registered method with the given short
// name — any registry entry, not only the paper's six.
func MethodByShort(short string) (Method, error) {
	fm, err := filter.Lookup(short)
	if err != nil {
		return Method{}, fmt.Errorf("exp: %w", err)
	}
	return fromRegistry(fm), nil
}

// BackboneWithK extracts a backbone of (approximately) k edges. Ranked
// methods take their top-k edges; fixed-size methods return their
// canonical output regardless of k, as the paper does when it compares
// methods "for a given number of edges" (MST and DS cannot be tuned).
func BackboneWithK(m Method, g *graph.Graph, k int) (*graph.Graph, error) {
	if m.FixedSize || m.Scorer == nil {
		return m.Extractor.Extract(g)
	}
	s, err := m.Scorer.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.TopK(k), nil
}

// BackboneWithShare extracts a backbone keeping the given share of the
// graph's edges (see BackboneWithK for fixed-size methods).
func BackboneWithShare(m Method, g *graph.Graph, share float64) (*graph.Graph, error) {
	k := int(share*float64(g.NumEdges()) + 0.5)
	return BackboneWithK(m, g, k)
}
