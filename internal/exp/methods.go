package exp

import (
	"fmt"

	"repro/internal/backbone"
	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/graph"
)

// Method bundles a backboning algorithm with the capabilities the
// experiments need: ranked scoring (for fixed-size comparisons) and/or
// parameter-free extraction.
type Method struct {
	// Name is the display name used in the paper's tables.
	Name string
	// Short is the identifier used on the command line ("nc", "df", ...).
	Short string
	// Scorer is nil for purely parameter-free methods (MST).
	Scorer filter.Scorer
	// Extractor is nil for threshold-only methods.
	Extractor filter.Extractor
	// FixedSize marks methods whose backbone size cannot be tuned
	// (MST and the connectivity-stopping DS), which appear as single
	// points in the paper's sweep figures.
	FixedSize bool
}

// Methods returns the six algorithms in the paper's comparison, in its
// presentation order: NC, DF, HSS, DS, MST, NT.
func Methods() []Method {
	ds := backbone.NewDoublyStochastic()
	return []Method{
		{Name: "Noise-Corrected", Short: "nc", Scorer: core.New()},
		{Name: "Disparity Filter", Short: "df", Scorer: backbone.NewDisparity()},
		{Name: "High Salience Skeleton", Short: "hss", Scorer: backbone.NewHSS()},
		{Name: "Doubly Stochastic", Short: "ds", Scorer: ds, Extractor: ds, FixedSize: true},
		{Name: "Maximum Spanning Tree", Short: "mst", Extractor: backbone.NewMST(), FixedSize: true},
		{Name: "Naive Threshold", Short: "nt", Scorer: backbone.NewNaive()},
	}
}

// MethodByShort returns the method with the given short name.
func MethodByShort(short string) (Method, error) {
	for _, m := range Methods() {
		if m.Short == short {
			return m, nil
		}
	}
	return Method{}, fmt.Errorf("exp: unknown method %q (want nc, df, hss, ds, mst or nt)", short)
}

// BackboneWithK extracts a backbone of (approximately) k edges. Ranked
// methods take their top-k edges; fixed-size methods return their
// canonical output regardless of k, as the paper does when it compares
// methods "for a given number of edges" (MST and DS cannot be tuned).
func BackboneWithK(m Method, g *graph.Graph, k int) (*graph.Graph, error) {
	if m.FixedSize || m.Scorer == nil {
		return m.Extractor.Extract(g)
	}
	s, err := m.Scorer.Scores(g)
	if err != nil {
		return nil, err
	}
	return s.TopK(k), nil
}

// BackboneWithShare extracts a backbone keeping the given share of the
// graph's edges (see BackboneWithK for fixed-size methods).
func BackboneWithShare(m Method, g *graph.Graph, share float64) (*graph.Graph, error) {
	k := int(share*float64(g.NumEdges()) + 0.5)
	return BackboneWithK(m, g, k)
}
