package exp

import (
	"context"
	"math/rand"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/stats"
)

// Fig4Config parameterizes the synthetic-recovery experiment of
// Section V-A (Figure 4).
type Fig4Config struct {
	// Seed fixes the random networks.
	Seed int64
	// Nodes is the Barabási–Albert network size (paper: 200).
	Nodes int
	// MeanDegree is the BA average degree (paper: 3).
	MeanDegree float64
	// Etas are the noise levels to sweep (paper: 0 to 0.3).
	Etas []float64
	// Reps averages each point over this many independent networks.
	Reps int
}

// DefaultFig4Config reproduces the paper's setting.
func DefaultFig4Config() Fig4Config {
	return Fig4Config{
		Seed:       4,
		Nodes:      200,
		MeanDegree: 3,
		Etas:       []float64{0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3},
		Reps:       5,
	}
}

// Fig4Result holds mean recovery (Jaccard between backbone and true
// edge set) per noise level per method.
type Fig4Result struct {
	Cfg Fig4Config
	// Recovery[methodShort][etaIndex] is the mean Jaccard.
	Recovery map[string][]float64
	Methods  []Method
}

// Fig4 runs the recovery experiment: BA networks with the complement
// filled by noise edges, every method cut to the true edge count. Each
// draw is one size-matched eval.Compare run with the base network as
// ground truth — the bespoke per-method extraction loop this driver
// used to carry lives in the evaluation engine now.
func Fig4(ctx context.Context, cfg Fig4Config) (*Fig4Result, error) {
	res := &Fig4Result{
		Cfg:      cfg,
		Recovery: map[string][]float64{},
		Methods:  Methods(),
	}
	names := make([]string, len(res.Methods))
	for i, m := range res.Methods {
		res.Recovery[m.Short] = make([]float64, len(cfg.Etas))
		names[i] = m.Short
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ei, eta := range cfg.Etas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		acc := map[string]*[]float64{}
		for _, m := range res.Methods {
			s := make([]float64, 0, cfg.Reps)
			acc[m.Short] = &s
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			base := gen.BarabasiAlbert(rng, cfg.Nodes, cfg.MeanDegree/2)
			nn := gen.AddNoise(rng, base, eta)
			grades, err := eval.Compare(ctx, nn.Noisy, eval.Config{
				Methods: names,
				TopK:    nn.NumTrue, TopKSet: true,
				Truth: base,
			})
			if err != nil {
				return nil, err
			}
			for _, me := range grades.Methods {
				if me.Err != "" {
					// DS can be infeasible on some draws; skip that draw.
					continue
				}
				*acc[me.Method] = append(*acc[me.Method], float64(me.Recovery))
			}
		}
		for short, vals := range acc {
			res.Recovery[short][ei] = stats.Mean(*vals)
		}
	}
	return res, nil
}

// Table renders the recovery grid.
func (r *Fig4Result) Table() *Table {
	t := &Table{
		Title:  "Figure 4 — Recovery of the true backbone of synthetic Barabasi-Albert networks",
		Header: []string{"eta"},
	}
	for _, m := range r.Methods {
		t.Header = append(t.Header, m.Short)
	}
	for ei, eta := range r.Cfg.Etas {
		row := []string{f3(eta)}
		for _, m := range r.Methods {
			row = append(row, f3(r.Recovery[m.Short][ei]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"recovery = Jaccard(backbone edges, true edges); backbones cut to the true edge count",
		"paper shape: NC best overall and most noise-resilient; DF ~ NT at high noise; MST/DS/HSS lower")
	return t
}
