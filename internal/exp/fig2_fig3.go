package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/backbone"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
)

// Fig2Result holds the threshold-setting illustration of Figure 2: the
// distribution of L̃_ij − δ·σ_ij for δ ∈ {1, 2, 3}; edges to the right
// of zero are accepted.
type Fig2Result struct {
	Network string
	Deltas  []float64
	// Hist[deltaIdx] is the histogram of shifted scores.
	Hist []*stats.Histogram
	// ShareAccepted[deltaIdx] is the share of edges with shifted score > 0.
	ShareAccepted []float64
}

// Fig2 computes the shifted-score distributions for one network graph,
// checking the context between deltas.
func Fig2(ctx context.Context, name string, g *graph.Graph, deltas []float64, bins int) (*Fig2Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := core.New().Scores(g)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Network: name, Deltas: deltas}
	for _, d := range deltas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		shifted := make([]float64, len(s.Score))
		accepted := 0
		for i := range shifted {
			shifted[i] = s.Aux["nc_score"][i] - d*s.Aux["sdev"][i]
			if shifted[i] > 0 {
				accepted++
			}
		}
		res.Hist = append(res.Hist, stats.NewHistogram(shifted, bins))
		res.ShareAccepted = append(res.ShareAccepted, float64(accepted)/float64(len(shifted)))
	}
	return res, nil
}

// Render draws the per-delta histograms with acceptance shares.
func (r *Fig2Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2 — NC score minus delta*sdev, %s network\n", r.Network)
	for di, d := range r.Deltas {
		fmt.Fprintf(&sb, "\ndelta = %g (share of edges accepted: %.3f; acceptance region is score > 0)\n",
			d, r.ShareAccepted[di])
		sb.WriteString(r.Hist[di].Render(40))
	}
	return sb.String()
}

// Fig3Row describes one edge of the toy example with its rank under NC
// and DF.
type Fig3Row struct {
	Edge   string
	Weight float64
	NCRank int
	DFRank int
}

// Fig3 reproduces the paper's toy example (Figure 3): a hub (node 1)
// with five spokes, two of which (nodes 2 and 3) share a weak direct
// edge. DF ranks the hub's spokes highly; NC ranks the unanticipated
// peripheral 2-3 edge highest.
func Fig3(ctx context.Context) ([]Fig3Row, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(false)
	b.AddNode("1")
	b.AddNode("2")
	b.AddNode("3")
	b.AddNode("4")
	b.AddNode("5")
	b.AddNode("6")
	// Hub weights: nodes 2 and 3 hang on weakly, nodes 4-6 strongly —
	// "nodes 2 and 3 tend to have low edge weights in general", so their
	// direct connection, though weaker than any hub edge, deviates most
	// from the null.
	for i, w := range []float64{6, 6, 20, 20, 20} {
		b.MustAddEdge(0, i+1, w)
	}
	b.MustAddEdge(1, 2, 4)
	g := b.Build()

	sNC, err := core.New().Scores(g)
	if err != nil {
		return nil, err
	}
	sDF, err := backbone.NewDisparity().Scores(g)
	if err != nil {
		return nil, err
	}
	rank := func(score []float64) []int {
		idx := make([]int, len(score))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return score[idx[a]] > score[idx[b]] })
		r := make([]int, len(score))
		for pos, id := range idx {
			r[id] = pos + 1
		}
		return r
	}
	ncRank := rank(sNC.Score)
	dfRank := rank(sDF.Score)
	rows := make([]Fig3Row, 0, g.NumEdges())
	for id, e := range g.Edges() {
		rows = append(rows, Fig3Row{
			Edge:   g.Label(int(e.Src)) + "-" + g.Label(int(e.Dst)),
			Weight: e.Weight,
			NCRank: ncRank[id],
			DFRank: dfRank[id],
		})
	}
	return rows, nil
}

// Fig3Table renders the toy-example ranking comparison.
func Fig3Table(rows []Fig3Row) *Table {
	t := &Table{
		Title:  "Figure 3 — Toy example: edge significance ranks under NC vs DF",
		Header: []string{"edge", "weight", "NC rank", "DF rank"},
	}
	for _, r := range rows {
		t.AddRow(r.Edge, f3(r.Weight), fmt.Sprintf("%d", r.NCRank), fmt.Sprintf("%d", r.DFRank))
	}
	t.Notes = append(t.Notes,
		"paper: NC finds 2-3 more important than the hub spokes; DF keeps hub-periphery edges")
	return t
}
