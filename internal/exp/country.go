package exp

import (
	"repro/internal/graph"
	"repro/internal/world"
)

// Country bundles the synthetic country-network datasets and their
// regression predictors, shared across the Section-V experiment drivers
// so the world is generated once.
type Country struct {
	W        *world.World
	Datasets []*world.Dataset
	Pred     *world.Predictors
}

// NewCountry generates the shared experiment context.
func NewCountry(cfg world.Config) *Country {
	w := world.New(cfg)
	return &Country{
		W:        w,
		Datasets: w.AllDatasets(),
		Pred:     w.Predictors(),
	}
}

// weightIn returns the weight that graph g assigns to a backbone edge e
// scored on graph bg. When the backbone is undirected (HSS and MST
// symmetrize directed inputs) but g is directed, both directions are
// summed, so year-over-year comparisons stay well defined.
func weightIn(g *graph.Graph, bg *graph.Graph, e graph.Edge) float64 {
	if bg.Directed() == g.Directed() {
		w, _ := g.Weight(int(e.Src), int(e.Dst))
		if !g.Directed() {
			return w
		}
		return w
	}
	// Undirected backbone over a directed graph: merge both directions.
	w1, _ := g.Weight(int(e.Src), int(e.Dst))
	w2, _ := g.Weight(int(e.Dst), int(e.Src))
	return w1 + w2
}

// RestrictEdges returns the edges of full whose node pair survives in
// the backbone, handling the directed-full/undirected-backbone case by
// normalizing pairs. This is how the Quality regressions restrict their
// observation set to the backbone.
func RestrictEdges(full, bb *graph.Graph) []graph.Edge {
	keep := make(map[graph.EdgeKey]bool, bb.NumEdges())
	for _, e := range bb.Edges() {
		k := bb.Key(e)
		keep[k] = true
		if !bb.Directed() {
			keep[graph.EdgeKey{U: k.V, V: k.U}] = true
		}
	}
	var out []graph.Edge
	for _, e := range full.Edges() {
		if keep[full.Key(e)] {
			out = append(out, e)
		}
	}
	return out
}
