package exp

import (
	"repro/internal/world"
)

// Country bundles the synthetic country-network datasets and their
// regression predictors, shared across the Section-V experiment drivers
// so the world is generated once.
//
// The cross-year weight joins and backbone edge restrictions these
// drivers used to implement with EdgeKey maps (weightIn, RestrictEdges)
// live in internal/eval now, as CSR merge-walks.
type Country struct {
	W        *world.World
	Datasets []*world.Dataset
	Pred     *world.Predictors
}

// NewCountry generates the shared experiment context.
func NewCountry(cfg world.Config) *Country {
	w := world.New(cfg)
	return &Country{
		W:        w,
		Datasets: w.AllDatasets(),
		Pred:     w.Predictors(),
	}
}
