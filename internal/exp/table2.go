package exp

import (
	"context"
	"math"

	"repro/internal/eval"
)

// Table2Result holds the Quality experiment (Section V-E): the R² ratio
// of the per-network OLS model restricted to each method's backbone
// over the model on the full edge set.
type Table2Result struct {
	Networks []string
	Methods  []Method
	// Quality[method][network]; NaN marks the paper's "n/a" cases
	// (infeasible Doubly-Stochastic transformations).
	Quality map[string]map[string]float64
	// EdgeShare is the share of edges the tunable backbones were cut to
	// (the HSS edge count, per the paper's protocol).
	EdgeShare map[string]float64
}

// Table2 runs the Quality criterion on the latest year of every country
// network. Following the paper, tunable methods are fixed to the edge
// count of a strict High Salience Skeleton (salience > 0.7), since HSS
// "always return[s] the fewest number of edges"; MST and DS keep their
// parameter-free sizes. The per-method evaluation — size-matched
// extraction, backbone-restricted OLS, the shared full-network
// denominator — is one eval.Compare run with the country predictors as
// the quality design.
func Table2(ctx context.Context, c *Country) (*Table2Result, error) {
	res := &Table2Result{
		Methods:   Methods(),
		Quality:   map[string]map[string]float64{},
		EdgeShare: map[string]float64{},
	}
	names := make([]string, len(res.Methods))
	for i, m := range res.Methods {
		res.Quality[m.Short] = map[string]float64{}
		names[i] = m.Short
	}
	for _, ds := range c.Datasets {
		res.Networks = append(res.Networks, ds.Name)
		full := ds.Latest()

		// Reference edge count: the HSS backbone at a low salience
		// threshold, per the paper's protocol ("we usually choose the
		// number of edges obtained with low threshold values for the
		// High Salience Skeleton").
		hss, err := MethodByShort("hss")
		if err != nil {
			return nil, err
		}
		sH, err := hss.Scorer.Scores(full)
		if err != nil {
			return nil, err
		}
		k := sH.CountAbove(0.1)
		if min := full.NumEdges() / 10; k < min {
			k = min // floor at 10% of edges so range restriction stays sane
		}
		if min := full.NumNodes(); k < min {
			k = min
		}
		res.EdgeShare[ds.Name] = float64(k) / float64(full.NumEdges())

		grades, err := eval.Compare(ctx, full, eval.Config{
			Methods: names,
			TopK:    k, TopKSet: true,
			Designer: c.Pred,
			Dataset:  ds.Name,
		})
		if err != nil {
			return nil, err
		}
		for _, me := range grades.Methods {
			if me.Err != "" {
				res.Quality[me.Method][ds.Name] = math.NaN() // paper's n/a
				continue
			}
			res.Quality[me.Method][ds.Name] = float64(me.Quality)
		}
	}
	return res, nil
}

// Table renders the quality grid in the paper's method order.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:  "Table II — Improvement in predictive power when using backbones (R² ratio)",
		Header: []string{"Method"},
	}
	t.Header = append(t.Header, r.Networks...)
	order := []string{"ds", "nt", "df", "hss", "mst", "nc"}
	for _, short := range order {
		var m Method
		for _, mm := range r.Methods {
			if mm.Short == short {
				m = mm
			}
		}
		row := []string{m.Name}
		for _, net := range r.Networks {
			row = append(row, f4(r.Quality[short][net]))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"values > 1: backbone-restricted OLS beats the full-network fit",
		"paper shape: NC best in every column and always > 1; DS n/a on Business, Flight, Ownership")
	return t
}
