// Package cache provides a byte-bounded LRU memo cache with integrated
// single-flight deduplication, the building block of the backboned
// daemon's content-addressed request caching.
//
// The cache is generic over key and value: the daemon keys parsed
// graphs by a content hash of the request body and score tables by
// (graph hash, method). Do is the primary entry point — it returns a
// cached value, joins an in-flight computation for the same key, or
// computes and stores the value itself. Values never expire by time;
// they are evicted least-recently-used when the configured byte budget
// overflows.
package cache

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits counts Do/Get calls answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts Do calls that computed their value (Get misses too).
	Misses uint64 `json:"misses"`
	// Coalesced counts Do calls that joined another caller's in-flight
	// computation instead of starting their own.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries removed to honor the byte budget.
	Evictions uint64 `json:"evictions"`
	// Entries is the current entry count.
	Entries int `json:"entries"`
	// Bytes is the summed cost of current entries; MaxBytes the budget.
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// LRU is a concurrency-safe, byte-bounded, least-recently-used memo
// cache with single-flight deduplication. A nil *LRU is a valid
// always-miss cache: Do computes directly, Get always misses — so
// callers can disable caching by configuration without branching.
type LRU[K comparable, V any] struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	ll      *list.List // front = most recently used
	items   map[K]*list.Element
	flights map[K]*flight[V]
	stats   Stats
}

type entry[K comparable, V any] struct {
	key  K
	v    V
	cost int64
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done chan struct{}
	v    V
	err  error
}

// New returns an LRU bounded to maxBytes of summed entry cost, or nil
// (the always-miss cache) when maxBytes <= 0.
func New[K comparable, V any](maxBytes int64) *LRU[K, V] {
	if maxBytes <= 0 {
		return nil
	}
	return &LRU[K, V]{
		max:     maxBytes,
		ll:      list.New(),
		items:   make(map[K]*list.Element),
		flights: make(map[K]*flight[V]),
	}
}

// Do returns the value for key: from the cache, by joining an
// identical in-flight computation, or by running compute (which
// reports the value's cost in bytes). hit is true when compute did not
// run in this call — the caller skipped the work. Failed computations
// are never cached; their error goes to the leader, and waiters retry
// (one of them becoming the new leader) unless their own ctx is done.
func (c *LRU[K, V]) Do(ctx context.Context, key K, compute func() (V, int64, error)) (v V, hit bool, err error) {
	if c == nil {
		v, _, err := compute()
		return v, false, err
	}
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			v := el.Value.(*entry[K, V]).v
			c.mu.Unlock()
			return v, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.stats.Coalesced++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					return f.v, true, nil
				}
				// The leader failed — possibly on its own context
				// (cancel, timeout), which must not poison us. Retry;
				// one waiter becomes the new leader.
				if ctxErr := ctx.Err(); ctxErr != nil {
					var zero V
					return zero, false, ctxErr
				}
				continue
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		c.lead(key, f, compute)
		return f.v, false, f.err
	}
}

// errComputePanicked is what waiters observe when a leader's compute
// panicked; they retry rather than inherit it.
var errComputePanicked = errors.New("cache: compute panicked")

// lead runs one computation as the flight's leader. The deferred
// cleanup runs even if compute panics: the flight is removed and its
// done channel closed (with an error set) so the key is never wedged —
// waiters retry, and the panic itself keeps unwinding to the caller
// (net/http's handler recovery, in the daemon).
func (c *LRU[K, V]) lead(key K, f *flight[V], compute func() (V, int64, error)) {
	var cost int64
	completed := false
	defer func() {
		if !completed {
			f.err = errComputePanicked
		}
		c.mu.Lock()
		delete(c.flights, key)
		if completed && f.err == nil {
			c.add(key, f.v, cost)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.v, cost, f.err = compute()
	completed = true
}

// Get returns the cached value for key without computing anything.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return zero, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry[K, V]).v, true
}

// Contains reports whether key is cached right now, without bumping
// recency or touching the hit/miss counters — a pure peek for callers
// that classify a request by cache residency (the daemon's admission
// lanes) before deciding whether to serve it at all.
func (c *LRU[K, V]) Contains(key K) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Add inserts (or refreshes) a value with the given cost, evicting
// least-recently-used entries as needed.
func (c *LRU[K, V]) Add(key K, v V, cost int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.add(key, v, cost)
}

// add inserts under c.mu. Values costing more than the whole budget
// are not stored at all.
func (c *LRU[K, V]) add(key K, v V, cost int64) {
	if cost < 0 {
		cost = 0
	}
	if cost > c.max {
		return
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += cost - e.cost
		e.v, e.cost = v, cost
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&entry[K, V]{key: key, v: v, cost: cost})
		c.bytes += cost
	}
	for c.bytes > c.max {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry[K, V])
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.cost
		c.stats.Evictions++
	}
}

// Len returns the current entry count.
func (c *LRU[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the cache's counters. A nil cache
// reports zeros.
func (c *LRU[K, V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.bytes
	s.MaxBytes = c.max
	return s
}
