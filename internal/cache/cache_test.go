package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoComputesOnceAndCaches(t *testing.T) {
	c := New[string, int](1 << 20)
	calls := 0
	compute := func() (int, int64, error) { calls++; return 42, 8, nil }

	v, hit, err := c.Do(context.Background(), "k", compute)
	if err != nil || hit || v != 42 {
		t.Fatalf("first Do = %d,%v,%v", v, hit, err)
	}
	v, hit, err = c.Do(context.Background(), "k", compute)
	if err != nil || !hit || v != 42 {
		t.Fatalf("second Do = %d,%v,%v", v, hit, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 8 {
		t.Errorf("stats = %+v", s)
	}
}

func TestEvictionOrderAndBudget(t *testing.T) {
	c := New[int, string](30)
	for i := 0; i < 3; i++ {
		c.Add(i, fmt.Sprint(i), 10) // fills the budget exactly
	}
	if _, ok := c.Get(0); !ok {
		t.Fatal("entry 0 evicted prematurely")
	}
	// Entry 0 is now most recent; adding one more must evict 1 (LRU).
	c.Add(3, "3", 10)
	if _, ok := c.Get(1); ok {
		t.Error("LRU entry 1 not evicted")
	}
	for _, want := range []int{0, 2, 3} {
		if _, ok := c.Get(want); !ok {
			t.Errorf("entry %d missing", want)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Bytes != 30 {
		t.Errorf("stats = %+v", s)
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New[string, int](10)
	c.Add("big", 1, 100)
	if c.Len() != 0 {
		t.Errorf("oversized entry stored (len %d)", c.Len())
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := New[string, int](100)
	c.Add("k", 1, 40)
	c.Add("k", 2, 10)
	if s := c.Stats(); s.Bytes != 10 || s.Entries != 1 {
		t.Errorf("stats after replace = %+v", s)
	}
	if v, ok := c.Get("k"); !ok || v != 2 {
		t.Errorf("Get = %d,%v", v, ok)
	}
}

// TestSingleFlight: concurrent Do calls for one key run compute once;
// everyone gets the value, late callers count as coalesced or hits.
func TestSingleFlight(t *testing.T) {
	c := New[string, int](1 << 20)
	var calls atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (int, int64, error) {
		calls.Add(1)
		close(started)
		<-release
		return 7, 1, nil
	}
	var wg sync.WaitGroup
	results := make(chan int, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := c.Do(context.Background(), "k", compute)
		if err != nil {
			t.Error(err)
		}
		results <- v
	}()
	<-started
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, hit, err := c.Do(context.Background(), "k", func() (int, int64, error) {
				t.Error("second compute ran")
				return 0, 0, nil
			})
			if err != nil || !hit {
				t.Errorf("waiter: %d,%v,%v", v, hit, err)
			}
			results <- v
		}()
	}
	time.Sleep(20 * time.Millisecond) // let waiters enqueue
	close(release)
	wg.Wait()
	close(results)
	for v := range results {
		if v != 7 {
			t.Errorf("result %d, want 7", v)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
}

// TestLeaderFailureDoesNotPoisonWaiters: when the leader's compute
// fails (e.g. its request was cancelled), a waiter retries as the new
// leader instead of inheriting the error.
func TestLeaderFailureDoesNotPoisonWaiters(t *testing.T) {
	c := New[string, int](1 << 20)
	boom := errors.New("leader cancelled")
	started := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() (int, int64, error) {
			close(started)
			<-release
			return 0, 0, boom
		})
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan error, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func() (int, int64, error) {
			return 9, 1, nil
		})
		if v != 9 && err == nil {
			t.Errorf("waiter got %d, want 9", v)
		}
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Errorf("leader err = %v, want %v", err, boom)
	}
	if err := <-waiterDone; err != nil {
		t.Errorf("waiter err = %v, want nil (retried)", err)
	}
	if v, ok := c.Get("k"); !ok || v != 9 {
		t.Errorf("cache after retry = %d,%v", v, ok)
	}
}

// TestWaiterHonorsContext: a waiter whose own context dies while the
// leader computes gives up with the context error.
func TestWaiterHonorsContext(t *testing.T) {
	c := New[string, int](1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() (int, int64, error) {
		close(started)
		<-release
		return 1, 1, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.Do(ctx, "k", func() (int, int64, error) { return 0, 0, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// TestNilCache: the nil cache is a valid always-miss implementation.
func TestNilCache(t *testing.T) {
	var c *LRU[string, int]
	if c != New[string, int](0) {
		t.Error("New(0) is not nil")
	}
	v, hit, err := c.Do(context.Background(), "k", func() (int, int64, error) { return 5, 1, nil })
	if v != 5 || hit || err != nil {
		t.Errorf("nil Do = %d,%v,%v", v, hit, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Error("nil Get hit")
	}
	c.Add("k", 1, 1)
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Error("nil cache retained state")
	}
	if c.Contains("k") {
		t.Error("nil Contains reported true")
	}
}

// TestContainsIsStatsAndRecencyNeutral pins the peek contract: lane
// classification probes the cache on every request and must neither
// skew the hit/miss counters nor protect entries from eviction.
func TestContainsIsStatsAndRecencyNeutral(t *testing.T) {
	c := New[string, int](2)
	c.Add("a", 1, 1)
	c.Add("b", 2, 1)

	if !c.Contains("a") || !c.Contains("b") || c.Contains("missing") {
		t.Fatal("Contains residency answers wrong")
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Contains moved counters: %+v", st)
	}

	// Peeking "a" many times must not refresh it: "a" is still the LRU
	// entry and the next insert evicts it, not "b".
	for i := 0; i < 10; i++ {
		c.Contains("a")
	}
	c.Add("c", 3, 1)
	if c.Contains("a") {
		t.Error("Contains bumped recency: LRU entry survived eviction")
	}
	if !c.Contains("b") || !c.Contains("c") {
		t.Error("wrong entry evicted")
	}
}

// TestConcurrentMixedKeys hammers the cache from many goroutines for
// the race detector.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int, int](1 << 10)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				k := (i + j) % 37
				v, _, err := c.Do(context.Background(), k, func() (int, int64, error) {
					return k * 2, 16, nil
				})
				if err != nil || v != k*2 {
					t.Errorf("Do(%d) = %d,%v", k, v, err)
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestLeaderPanicDoesNotWedgeKey: a panicking compute must clean up
// its flight — waiters retry, later callers compute normally.
func TestLeaderPanicDoesNotWedgeKey(t *testing.T) {
	c := New[string, int](1 << 20)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }() // the panic propagates to the leader's caller
		c.Do(context.Background(), "k", func() (int, int64, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	waiterDone := make(chan error, 1)
	go func() {
		v, _, err := c.Do(context.Background(), "k", func() (int, int64, error) { return 3, 1, nil })
		if err == nil && v != 3 {
			t.Errorf("waiter got %d, want 3", v)
		}
		waiterDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-waiterDone; err != nil {
		t.Errorf("waiter err = %v, want nil (retried after leader panic)", err)
	}
	// The key works normally afterwards.
	v, _, err := c.Do(context.Background(), "k", func() (int, int64, error) { return 4, 1, nil })
	if err != nil || v != 3 { // waiter's retry cached 3
		t.Errorf("post-panic Do = %d,%v", v, err)
	}
}
