package repro

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/filter"
	"repro/internal/graph"
)

// Method is a registry entry describing one backboning algorithm: its
// name, description, typed parameter schema, and scoring/extraction
// capabilities. See Methods and the filter package.
type Method = filter.Method

// Param describes one tunable parameter of a Method.
type Param = filter.Param

// Methods lists every registered backboning method in presentation
// order (nc, df, hss, ds, mst, nt, nc-binomial, kcore, ...). New
// algorithms appear here automatically once they self-register.
func Methods() []*Method { return filter.All() }

// LookupMethod returns the registered method with the given name.
func LookupMethod(name string) (*Method, error) { return filter.Lookup(name) }

// config collects the pipeline options; zero value = NC at defaults.
type config struct {
	method    string
	methodSet bool
	params    filter.Params
	topK      int
	topKSet   bool
	topFrac   float64
	fracSet   bool
	parallel  bool
	scores    *Scores
	dirtyOld  *Scores
	dirty     graph.Dirty
	dirtySet  bool
	progress  func(done, total int)
	lenient   bool // skip params the method does not declare (BackboneAll)
	err       error

	// Evaluation-only options (EvaluateContext / CompareContext); see
	// eval.go. resolve rejects them on the single-method pipeline.
	evalMethods     []string
	evalNext        *Graph
	evalTruth       *Graph
	evalDesigner    Designer
	evalDataset     string
	evalSource      ScoreSource
	evalProgress    func(method string, done, total int)
	evalConcurrency int
}

// evalOnly names the first evaluation-only option set on c, or "".
func (c *config) evalOnly() string {
	switch {
	case c.evalMethods != nil:
		return "WithMethods"
	case c.evalNext != nil:
		return "WithNextSnapshot"
	case c.evalTruth != nil:
		return "WithGroundTruth"
	case c.evalDesigner != nil:
		return "WithQualityDesign"
	case c.evalSource != nil:
		return "WithScoreSource"
	case c.evalProgress != nil:
		return "WithEvalProgress"
	case c.evalConcurrency != 0:
		return "WithEvalConcurrency"
	}
	return ""
}

// Option configures Backbone, Score and BackboneAll.
type Option func(*config)

func (c *config) setErr(err error) {
	if c.err == nil {
		c.err = err
	}
}

// WithMethod selects the backboning algorithm by registry name
// ("nc", "df", "hss", "ds", "mst", "nt", "nc-binomial", "kcore").
// The default is "nc".
func WithMethod(name string) Option {
	return func(c *config) { c.method, c.methodSet = name, true }
}

// WithParam sets one method parameter by its schema name. Setting a
// parameter the selected method does not declare is an error.
func WithParam(name string, value float64) Option {
	return func(c *config) {
		if c.params == nil {
			c.params = filter.Params{}
		}
		c.params[name] = value
	}
}

// WithDelta sets the NC significance threshold δ (in posterior standard
// deviations). Shorthand for WithParam("delta", delta).
func WithDelta(delta float64) Option { return WithParam("delta", delta) }

// WithAlpha sets the significance level α of the df and nc-binomial
// methods. Shorthand for WithParam("alpha", alpha).
func WithAlpha(alpha float64) Option { return WithParam("alpha", alpha) }

// WithSalience sets the hss minimum salience.
func WithSalience(s float64) Option { return WithParam("salience", s) }

// WithWeightThreshold sets the nt minimum edge weight.
func WithWeightThreshold(t float64) Option { return WithParam("threshold", t) }

// WithK sets the kcore minimum degree k.
func WithK(k int) Option { return WithParam("k", float64(k)) }

// WithTopK prunes to exactly the k most significant edges instead of
// the method's native threshold — the paper's size-matched comparison.
// Errors for methods without a scorer (mst).
func WithTopK(k int) Option {
	return func(c *config) {
		if k < 0 {
			c.setErr(&ParamError{Param: "top", Reason: fmt.Sprintf("WithTopK(%d): k must be non-negative", k)})
			return
		}
		c.topK, c.topKSet = k, true
	}
}

// WithTopFraction prunes to the given share (0..1] of the graph's
// edges. Errors for methods without a scorer (mst).
func WithTopFraction(f float64) Option {
	return func(c *config) {
		if f <= 0 || f > 1 {
			c.setErr(&ParamError{Param: "frac", Reason: fmt.Sprintf("WithTopFraction(%v): fraction must be in (0, 1]", f)})
			return
		}
		c.topFrac, c.fracSet = f, true
	}
}

// WithParallel requests the method's multi-core scorer when it has one
// (nc does); methods without one run serially, results are identical
// either way.
func WithParallel() Option {
	return func(c *config) { c.parallel = true }
}

// WithScores supplies a precomputed significance table so Backbone can
// skip scoring and go straight to pruning — the backboned daemon's
// score cache rides on this. The table must belong to the same *Graph
// value (enforced), and must have been produced by the selected
// method — that pairing is the caller's contract and cannot be
// verified, because Scores.Method names the concrete scorer variant
// ("nc-parallel"), not the registry entry. Method parameters (delta,
// alpha, ...) still apply: they only move the pruning threshold, never
// the table itself.
func WithScores(s *Scores) Option {
	return func(c *config) { c.scores = s }
}

// WithDirtyScores supplies the previous materialization's score table
// plus the Dirty record a Delta materialization produced, so the run
// re-scores only the rows the update stream could have changed
// (filter.RescoreDirty) and reuses everything else — the incremental
// sibling of WithScores. old may be nil (e.g. the first run of a
// session); methods without a delta capability fall back to a full
// rescore transparently. Either way the resulting table is
// bit-identical to scoring from scratch. The graph passed to the run
// must be dirty.For (enforced), and old, when set, must have been
// computed for dirty.Base by the same method. Mutually exclusive with
// WithScores.
func WithDirtyScores(old *Scores, dirty Dirty) Option {
	return func(c *config) { c.dirtyOld, c.dirty, c.dirtySet = old, dirty, true }
}

// WithProgress registers a callback for long runs: fn is invoked after
// every scored checkpoint range (a few thousand edges) with the
// cumulative number of scored edges and the total. Parallel runs call
// fn concurrently from worker goroutines, and BackboneAll interleaves
// the progress of its methods, so fn must be safe for concurrent use.
// Methods that do not score by ranges (hss, mst, ds) report no
// intermediate progress.
func WithProgress(fn func(done, total int)) Option {
	return func(c *config) { c.progress = fn }
}

// Result bundles a pipeline run: the backbone itself, the significance
// table it was pruned from (nil for extract-only methods), and run
// metadata for logging and method comparison.
type Result struct {
	// Method and Title identify the algorithm ("nc", "Noise-Corrected").
	Method string
	Title  string
	// Params are the fully resolved parameter values of the run.
	Params map[string]float64
	// Backbone is the extracted subgraph (full node set preserved).
	Backbone *Graph
	// Scores is the significance table the backbone was pruned from;
	// nil when the method extracts directly (mst, and ds without TopK).
	Scores *Scores
	// Duration is the wall time of scoring plus pruning.
	Duration time.Duration
	// Err is only set on results from BackboneAll: the method's runtime
	// failure (e.g. the doubly stochastic transformation not existing
	// for this graph — the "n/a" entries of the paper's Table II).
	// Backbone and Err are mutually exclusive.
	Err error
	// NodeCoverage is the share of the input's non-isolated nodes still
	// connected in the backbone; EdgeCoverage the share of edges kept.
	NodeCoverage float64
	EdgeCoverage float64
}

func (r *Result) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%s: n/a (%v)", r.Method, r.Err)
	}
	return fmt.Sprintf("%s: %d edges, %.1f%% node coverage, %.1f%% edges, %v",
		r.Method, r.Backbone.NumEdges(), 100*r.NodeCoverage, 100*r.EdgeCoverage, r.Duration.Round(time.Microsecond))
}

// resolve applies the options and looks the method up.
func resolve(opts []Option) (*config, *Method, error) {
	c := &config{method: "nc"}
	for _, o := range opts {
		o(c)
	}
	if c.err != nil {
		return nil, nil, c.err
	}
	if name := c.evalOnly(); name != "" {
		return nil, nil, &ParamError{Param: name, Reason: "option only applies to Evaluate/Compare"}
	}
	m, err := filter.Lookup(c.method)
	if err != nil {
		return nil, nil, err
	}
	if c.lenient {
		kept := filter.Params{}
		//lint:detiter-ok filtering into another map; the kept set is order-independent
		for name, v := range c.params {
			if _, ok := m.Param(name); ok {
				kept[name] = v
			}
		}
		c.params = kept
	}
	return c, m, nil
}

// Backbone runs the full backboning pipeline on g: select a method,
// resolve its parameters, score, prune, and report. With no options it
// extracts the Noise-Corrected backbone at δ = 1.64.
//
//	res, err := repro.Backbone(g, repro.WithMethod("df"), repro.WithAlpha(0.01))
//	res, err := repro.Backbone(g, repro.WithTopK(500))   // size-matched NC
//
// Backbone never cancels; use BackboneContext to bound a run.
func Backbone(g *Graph, opts ...Option) (*Result, error) {
	return BackboneContext(context.Background(), g, opts...)
}

// BackboneContext is Backbone under a context: scoring checks ctx
// between checkpoint ranges (a few thousand edges per worker) and
// returns ctx.Err() promptly after cancellation or deadline expiry.
// Combine with WithProgress to observe long runs:
//
//	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
//	defer cancel()
//	res, err := repro.BackboneContext(ctx, g, repro.WithMethod("nc"), repro.WithParallel())
func BackboneContext(ctx context.Context, g *Graph, opts ...Option) (*Result, error) {
	c, m, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.scores != nil && c.scores.G != g {
		return nil, &ParamError{Method: m.Name, Param: "scores", Reason: "precomputed table belongs to a different graph"}
	}
	so := filter.ScoreOpts{Parallel: c.parallel, Progress: c.progress}
	start := time.Now()
	scores := c.scores
	if c.dirtySet {
		if scores != nil {
			return nil, &ParamError{Method: m.Name, Param: "scores", Reason: "WithScores and WithDirtyScores are mutually exclusive"}
		}
		if c.dirty.For != g {
			return nil, &ParamError{Method: m.Name, Param: "scores", Reason: "dirty record describes a different graph"}
		}
		if scores, _, err = filter.RescoreDirty(ctx, m, c.dirtyOld, c.dirty, so); err != nil {
			return nil, err
		}
	}
	var bb *Graph
	var params filter.Params
	switch {
	case c.topKSet || c.fracSet:
		if !m.CanScore() {
			return nil, fmt.Errorf("repro: method %q has a fixed backbone size and does not support top-k pruning: %w", m.Name, filter.ErrNoScorer)
		}
		params, err = m.Resolve(c.params)
		if err != nil {
			return nil, err
		}
		if scores == nil {
			if scores, err = m.ScoreCtx(ctx, g, so); err != nil {
				return nil, err
			}
		}
		if c.topKSet {
			bb = scores.TopK(c.topK)
		} else {
			bb = scores.TopFraction(c.topFrac)
		}
	case scores != nil:
		if m.Cut == nil {
			return nil, fmt.Errorf("repro: method %q has no threshold rule to prune a precomputed table: %w", m.Name, filter.ErrNoScorer)
		}
		params, err = m.Resolve(c.params)
		if err != nil {
			return nil, err
		}
		bb = scores.Threshold(m.Cut(params))
	default:
		bb, scores, params, err = m.BackboneScoredCtx(ctx, g, c.params, so)
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		Method:   m.Name,
		Title:    m.Title,
		Params:   params,
		Backbone: bb,
		Scores:   scores,
		Duration: time.Since(start),
	}
	if n := g.NumConnected(); n > 0 {
		res.NodeCoverage = float64(bb.NumConnected()) / float64(n)
	}
	if e := g.NumEdges(); e > 0 {
		res.EdgeCoverage = float64(bb.NumEdges()) / float64(e)
	}
	return res, nil
}

// Score computes the selected method's per-edge significance table
// without pruning; prune the returned table with its Threshold, TopK
// or TopFraction. Pruning options (WithTopK, WithTopFraction) are an
// error here, as are extract-only methods (mst).
//
//	s, err := repro.Score(g, repro.WithMethod("hss"))
//
// Score never cancels; use ScoreContext to bound a run.
func Score(g *Graph, opts ...Option) (*Scores, error) {
	return ScoreContext(context.Background(), g, opts...)
}

// ScoreContext is Score under a context, with the same cancellation
// semantics as BackboneContext.
func ScoreContext(ctx context.Context, g *Graph, opts ...Option) (*Scores, error) {
	c, m, err := resolve(opts)
	if err != nil {
		return nil, err
	}
	if c.topKSet || c.fracSet {
		return nil, fmt.Errorf("repro: Score returns the full table; prune with Backbone's WithTopK/WithTopFraction or the table's own TopK")
	}
	// Parameters only shift thresholds, never the table itself, but an
	// undeclared parameter still signals a caller bug.
	if _, err := m.Resolve(c.params); err != nil {
		return nil, err
	}
	so := filter.ScoreOpts{Parallel: c.parallel, Progress: c.progress}
	if c.dirtySet {
		if c.scores != nil {
			return nil, &ParamError{Method: m.Name, Param: "scores", Reason: "WithScores and WithDirtyScores are mutually exclusive"}
		}
		if c.dirty.For != g {
			return nil, &ParamError{Method: m.Name, Param: "scores", Reason: "dirty record describes a different graph"}
		}
		s, _, err := filter.RescoreDirty(ctx, m, c.dirtyOld, c.dirty, so)
		return s, err
	}
	return m.ScoreCtx(ctx, g, so)
}

// BackboneAll runs several methods concurrently on the same graph and
// returns their results in the order the methods were given — the
// paper's protocol of comparing algorithms at identical backbone sizes:
//
//	results, err := repro.BackboneAll(g, []string{"nc", "df", "mst"}, repro.WithTopK(500))
//
// A nil or empty methods slice runs every registered method. Shared
// options apply to each method; parameters a method does not declare
// are skipped (so WithDelta can ride along with df) as long as at
// least one selected method declares them, and WithTopK /
// WithTopFraction are ignored for methods that cannot rank edges
// (mst), since the paper plots those as single points.
//
// Invalid input — an unknown method name, a parameter no selected
// method declares — errors before any work starts. A method failing
// at runtime (e.g. the doubly stochastic transformation not existing
// for this graph) does not abort the others: its Result carries the
// failure in Err with a nil Backbone, matching the "n/a" cells of the
// paper's tables.
func BackboneAll(g *Graph, methods []string, opts ...Option) ([]*Result, error) {
	return BackboneAllContext(context.Background(), g, methods, opts...)
}

// BackboneAllContext is BackboneAll under a context. Cancellation
// propagates into every per-method goroutine: in-flight scoring stops
// at the next checkpoint and the affected results carry ctx.Err() in
// their Err field. The method slice and ordering semantics are those
// of BackboneAll.
func BackboneAllContext(ctx context.Context, g *Graph, methods []string, opts ...Option) ([]*Result, error) {
	if len(methods) == 0 {
		for _, m := range Methods() {
			methods = append(methods, m.Name)
		}
	}
	// Validate up front so typos fail before any work starts: every
	// method name must resolve, and every shared parameter must be
	// declared by at least one of the selected methods (a parameter no
	// method knows is a misspelling, not a ride-along).
	var selected []*Method
	for _, name := range methods {
		m, err := filter.Lookup(name)
		if err != nil {
			return nil, err
		}
		selected = append(selected, m)
	}
	probe := &config{}
	for _, o := range opts {
		o(probe)
	}
	if probe.err != nil {
		return nil, probe.err
	}
	// Sorted order pins which undeclared parameter the error names.
	for _, name := range probe.params.Names() {
		declared := false
		for _, m := range selected {
			if _, ok := m.Param(name); ok {
				declared = true
				break
			}
		}
		if !declared {
			return nil, &ParamError{Param: name, Reason: "no selected method declares this parameter", Err: ErrUnknownParam}
		}
	}
	results := make([]*Result, len(methods))
	var wg sync.WaitGroup
	for i, m := range selected {
		wg.Add(1)
		go func(i int, m *Method) {
			defer wg.Done()
			runOpts := append([]Option{}, opts...)
			runOpts = append(runOpts, WithMethod(m.Name), func(c *config) {
				c.lenient = true
				if (c.topKSet || c.fracSet) && !m.CanScore() {
					c.topKSet, c.fracSet = false, false
				}
			})
			res, err := BackboneContext(ctx, g, runOpts...)
			if err != nil {
				res = &Result{Method: m.Name, Title: m.Title, Err: err}
			}
			results[i] = res
		}(i, m)
	}
	wg.Wait()
	return results, nil
}

// MethodsTable renders the registered methods and their parameters as
// a GitHub-flavored markdown table — the README's method table is this
// function's output.
func MethodsTable() string {
	out := "| Method | Name | Parameters | Parallel | Description |\n|---|---|---|---|---|\n"
	for _, m := range Methods() {
		params := "—"
		if len(m.Params) > 0 {
			params = ""
			for i, p := range m.Params {
				if i > 0 {
					params += ", "
				}
				if p.Integer {
					params += fmt.Sprintf("`%s=%d`", p.Name, int(p.Default))
				} else {
					params += fmt.Sprintf("`%s=%g`", p.Name, p.Default)
				}
			}
		}
		parallel := "—"
		if m.ParallelScorer != nil {
			parallel = "✓"
		}
		out += fmt.Sprintf("| `%s` | %s | %s | %s | %s |\n", m.Name, m.Title, params, parallel, m.Desc)
	}
	return out
}
