package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus per-method scoring throughput on the Fig-9
// Erdős–Rényi workload. Run everything with:
//
//	go test -bench=. -benchmem
//
// The figure/table benchmarks measure the cost of regenerating the
// artifact at reduced scale; the cmd/experiments binary produces the
// full-size outputs recorded in EXPERIMENTS.md.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/occupations"
	"repro/internal/world"
)

// benchWorld is generated once and shared by the country benchmarks.
var benchWorld *exp.Country

func benchCountry(b *testing.B) *exp.Country {
	b.Helper()
	if benchWorld == nil {
		benchWorld = exp.NewCountry(world.Config{Seed: 7, Countries: 60, Products: 150, Years: 3})
	}
	return benchWorld
}

func BenchmarkFig1CommunityRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig1(context.Background(), 1, 60, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ScoreDistributions(b *testing.B) {
	c := benchCountry(b)
	g := c.Datasets[1].Latest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig2(context.Background(), "Country Space", g, []float64{1, 2, 3}, 24); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ToyExample(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig3(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Recovery(b *testing.B) {
	cfg := exp.Fig4Config{Seed: 4, Nodes: 60, MeanDegree: 3,
		Etas: []float64{0.1}, Reps: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := exp.Fig4(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5WeightDistributions(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig5(c)
	}
}

func BenchmarkFig6LocalCorrelation(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Fig6(c)
	}
}

func BenchmarkFig7Coverage(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8Stability(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig8(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1VarianceValidation(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Quality(b *testing.B) {
	c := benchCountry(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table2(context.Background(), c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaseStudy(b *testing.B) {
	cfg := occupations.Config{Seed: 3, Majors: 5, MinorsPerMajor: 2, OccsPerMinor: 10,
		CoreSkills: 12, GenericSkills: 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.CaseStudy(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 9's subject is per-method scoring throughput; the benchmarks
// below are its data points at a fixed size. The full sweep (25k to
// 800k+ nodes, with fitted scaling exponents) runs via
// `go run ./cmd/experiments fig9`.

func fig9Graph(b *testing.B, n int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	return gen.ErdosRenyiGNM(rng, n, n*3/2)
}

func benchScorer(b *testing.B, short string, n int) {
	g := fig9Graph(b, n)
	m, err := exp.MethodByShort(short)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.BackboneWithShare(m, g, 0.1); err != nil {
			if short == "ds" {
				// Sparse ER graphs rarely have the total support the
				// Sinkhorn scaling needs; the paper's Fig 9 could not run
				// DS at scale either. Report as skipped, not failed.
				b.Skipf("doubly stochastic infeasible on this graph: %v", err)
			}
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9NC10k(b *testing.B)   { benchScorer(b, "nc", 10_000) }
func BenchmarkFig9NC100k(b *testing.B)  { benchScorer(b, "nc", 100_000) }
func BenchmarkFig9DF10k(b *testing.B)   { benchScorer(b, "df", 10_000) }
func BenchmarkFig9DF100k(b *testing.B)  { benchScorer(b, "df", 100_000) }
func BenchmarkFig9NT10k(b *testing.B)   { benchScorer(b, "nt", 10_000) }
func BenchmarkFig9NT100k(b *testing.B)  { benchScorer(b, "nt", 100_000) }
func BenchmarkFig9MST10k(b *testing.B)  { benchScorer(b, "mst", 10_000) }
func BenchmarkFig9MST100k(b *testing.B) { benchScorer(b, "mst", 100_000) }
func BenchmarkFig9HSS1k(b *testing.B)   { benchScorer(b, "hss", 1_000) }
func BenchmarkFig9DS1k(b *testing.B)    { benchScorer(b, "ds", 1_000) }

// Core-primitive benchmarks, independent of the experiment drivers.

func BenchmarkNCScoresOnly100k(b *testing.B) {
	g := fig9Graph(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NCScores(g); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGraphBuild(b *testing.B, nodes, m int) {
	rng := rand.New(rand.NewSource(3))
	type e struct {
		u, v int
		w    float64
	}
	edges := make([]e, m)
	for i := range edges {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			v = (v + 1) % nodes
		}
		edges[i] = e{u, v, rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(false)
		bld.AddNodes(nodes)
		for _, ed := range edges {
			bld.MustAddEdge(ed.u, ed.v, ed.w)
		}
		bld.Build()
	}
}

func BenchmarkGraphBuild100k(b *testing.B) { benchGraphBuild(b, 100_000, 150_000) }
func BenchmarkGraphBuild1M(b *testing.B)   { benchGraphBuild(b, 700_000, 1_000_000) }

// Extraction benchmarks: pruning a precomputed score table must not
// re-hash the graph — the CSR Subgraph path is measured in isolation
// from scoring.

func benchExtract(b *testing.B, n int, prune func(s *Scores) *Graph) {
	g := fig9Graph(b, n)
	s, err := NCScores(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bb := prune(s); bb.NumNodes() != g.NumNodes() {
			b.Fatal("node set not preserved")
		}
	}
}

func BenchmarkThresholdExtract100k(b *testing.B) {
	benchExtract(b, 100_000, func(s *Scores) *Graph { return s.Threshold(s.ThresholdForK(s.G.NumEdges() / 10)) })
}

func BenchmarkTopKExtract100k(b *testing.B) {
	benchExtract(b, 100_000, func(s *Scores) *Graph { return s.TopK(s.G.NumEdges() / 10) })
}

func BenchmarkTopKExtract1M(b *testing.B) {
	benchExtract(b, 670_000, func(s *Scores) *Graph { return s.TopK(s.G.NumEdges() / 10) })
}
