package repro

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func evalTestGraph(t testing.TB, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	n := m/4 + 2
	b := NewBuilder(false)
	b.AddNodes(n)
	for added := 0; added < m; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v, 1+rng.Float64()*20); err != nil {
			t.Fatal(err)
		}
		added++
	}
	return b.Build()
}

// TestEvalOptionWiring: the shared option set reaches the engine — the
// method subset, pruning size, ride-along parameters and the stability
// snapshot all take effect through the public wrappers.
func TestEvalOptionWiring(t *testing.T) {
	g := evalTestGraph(t, 400)
	next := evalTestGraph(t, 300)
	rep, err := Compare(g,
		WithMethods("nc", "df", "mst"),
		WithTopK(50),
		WithDelta(2.0),
		WithNextSnapshot(next),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Methods) != 3 || rep.TargetEdges != 50 {
		t.Fatalf("report shape: %d methods, target %d", len(rep.Methods), rep.TargetEdges)
	}
	if rep.Methods[0].Params["delta"] != 2.0 {
		t.Errorf("ride-along delta lost: %v", rep.Methods[0].Params)
	}
	for _, me := range rep.Methods {
		if me.Err != "" {
			continue
		}
		if math.IsNaN(float64(me.Stability)) {
			t.Errorf("%s: stability NaN despite WithNextSnapshot", me.Method)
		}
	}
	// WithMethod (singular) narrows the evaluation, so pipeline-style
	// call sites compose.
	one, err := Evaluate(g, WithMethod("nt"), WithWeightThreshold(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Methods) != 1 || one.Methods[0].Method != "nt" {
		t.Fatalf("WithMethod narrowing: %+v", one.Methods)
	}
}

// TestEvalOnlyOptionsRejectedByPipeline: evaluation-only options are a
// typed error on the single-method pipeline instead of a silent no-op.
func TestEvalOnlyOptionsRejectedByPipeline(t *testing.T) {
	g := evalTestGraph(t, 60)
	for name, opt := range map[string]Option{
		"WithMethods":      WithMethods("nc"),
		"WithNextSnapshot": WithNextSnapshot(g),
		"WithGroundTruth":  WithGroundTruth(g),
		"WithScoreSource": WithScoreSource(func(context.Context, *Method) (*Scores, bool, error) {
			return nil, false, nil
		}),
	} {
		var pe *ParamError
		if _, err := Backbone(g, opt); !errors.As(err, &pe) {
			t.Errorf("Backbone with %s: err = %v, want ParamError", name, err)
		}
		if _, err := Score(g, opt); err == nil {
			t.Errorf("Score with %s accepted", name)
		}
	}
	// WithScores does not carry into evaluations; the error points at
	// WithScoreSource instead.
	s, err := Score(g, WithMethod("nc"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(g, WithScores(s)); err == nil {
		t.Error("Evaluate accepted WithScores")
	}
}

// TestEvaluateContextCancellation: the wrappers surface context expiry
// as the context error, matching the daemon's 499/504 mapping.
func TestEvaluateContextCancellation(t *testing.T) {
	g := evalTestGraph(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if _, err := EvaluateContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestEvaluateUnknownInputs: unknown methods and undeclared ride-along
// parameters fail with the pipeline's typed errors.
func TestEvaluateUnknownInputs(t *testing.T) {
	g := evalTestGraph(t, 60)
	if _, err := Evaluate(g, WithMethods("bogus")); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("unknown method: %v", err)
	}
	if _, err := Compare(g, WithMethods("mst"), WithDelta(1)); !errors.Is(err, ErrUnknownParam) {
		t.Errorf("undeclared ride-along: %v", err)
	}
}
