package repro

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/graph"
)

// This file is the registry-wide incremental-correctness harness: for
// every registered method, score tables and backbones produced through
// the Delta + WithDirtyScores path must be bit-identical to a cold
// rebuild + full rescore of the same edge set — whether the method
// takes the frontier re-scoring fast path (nt, df), the global
// re-score path (nc, nc-binomial), or the transparent full-rescore
// fallback (hss, ds, kcore, no delta capability declared).

// incrementalHarness drives one method through a random update stream,
// chaining tables with WithDirtyScores, and checks each step against
// the cold oracle.
func incrementalHarness(t *testing.T, m *Method) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(17 + m.Order)))
	const n = 30
	b := NewBuilder(false)
	b.AddNodes(n)
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.MustAddEdge(u, v, float64(rng.Intn(50)+1))
		}
	}
	base := b.Build()

	state := make(map[[2]int32]float64)
	var order [][2]int32
	for _, e := range base.Edges() {
		state[[2]int32{e.Src, e.Dst}] = e.Weight
		order = append(order, [2]int32{e.Src, e.Dst})
	}
	coldBuild := func() *Graph {
		cb := NewBuilder(false)
		cb.AddNodes(n)
		for _, k := range order {
			if w := state[k]; w > 0 {
				cb.MustAddEdge(int(k[0]), int(k[1]), w)
			}
		}
		return cb.Build()
	}

	d := graph.NewDelta(base, 16) // small limit: the stream crosses compaction
	var prev *Scores
	ctx := context.Background()

	for step := 0; step < 12; step++ {
		batch := make([]Update, rng.Intn(5)+1)
		for i := range batch {
			u := Update{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
			for u.Src == u.Dst {
				u.Dst = int32(rng.Intn(n))
			}
			if rng.Intn(4) != 0 {
				u.Weight = float64(rng.Intn(40) + 1)
			}
			batch[i] = u
			src, dst := u.Src, u.Dst
			if src > dst {
				src, dst = dst, src
			}
			k := [2]int32{src, dst}
			if _, seen := state[k]; !seen {
				order = append(order, k)
			}
			state[k] = u.Weight
		}
		if err := d.Apply(batch); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g, dirty := d.Graph()

		inc, incErr := ScoreContext(ctx, g, WithMethod(m.Name), WithDirtyScores(prev, dirty))
		want, wantErr := ScoreContext(ctx, coldBuild(), WithMethod(m.Name))
		if (incErr == nil) != (wantErr == nil) {
			t.Fatalf("step %d: incremental err %v vs cold err %v", step, incErr, wantErr)
		}
		if incErr != nil {
			prev = nil
			continue
		}
		requireTablesBitIdentical(t, m.Name, step, inc, want)

		// Backbones prune bit-identical tables identically; still pin
		// the end-to-end path for methods with a native threshold rule.
		if m.Cut != nil {
			incB, err := BackboneContext(ctx, g, WithMethod(m.Name), WithDirtyScores(prev, dirty))
			if err != nil {
				t.Fatalf("step %d: incremental backbone: %v", step, err)
			}
			wantB, err := BackboneContext(ctx, coldBuild(), WithMethod(m.Name))
			if err != nil {
				t.Fatalf("step %d: cold backbone: %v", step, err)
			}
			requireBackbonesEqual(t, m.Name, step, incB.Backbone, wantB.Backbone)
		}
		prev = inc
	}
}

func requireTablesBitIdentical(t *testing.T, method string, step int, got, want *Scores) {
	t.Helper()
	if len(got.Score) != len(want.Score) {
		t.Fatalf("%s step %d: table size %d vs %d", method, step, len(got.Score), len(want.Score))
	}
	for i := range got.Score {
		if math.Float64bits(got.Score[i]) != math.Float64bits(want.Score[i]) {
			t.Fatalf("%s step %d: score row %d: %v vs %v", method, step, i, got.Score[i], want.Score[i])
		}
	}
	if len(got.Aux) != len(want.Aux) {
		t.Fatalf("%s step %d: aux columns %d vs %d", method, step, len(got.Aux), len(want.Aux))
	}
	//lint:detiter-ok comparison visits each column once; failure text names the column
	for name, col := range want.Aux {
		gcol, ok := got.Aux[name]
		if !ok || len(gcol) != len(col) {
			t.Fatalf("%s step %d: aux column %q missing or mis-sized", method, step, name)
		}
		for i := range col {
			if math.Float64bits(gcol[i]) != math.Float64bits(col[i]) {
				t.Fatalf("%s step %d: aux %q row %d: %v vs %v", method, step, name, i, gcol[i], col[i])
			}
		}
	}
}

func requireBackbonesEqual(t *testing.T, method string, step int, got, want *Graph) {
	t.Helper()
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s step %d: backbone edges %d vs %d", method, step, got.NumEdges(), want.NumEdges())
	}
	for i, e := range got.Edges() {
		w := want.Edge(i)
		if e.Src != w.Src || e.Dst != w.Dst || math.Float64bits(e.Weight) != math.Float64bits(w.Weight) {
			t.Fatalf("%s step %d: backbone edge %d: %+v vs %+v", method, step, i, e, w)
		}
	}
}

// TestIncrementalBitIdenticalAllMethods runs the harness over every
// registered method that can score — the frontier paths (nt, df), the
// global paths (nc, nc-binomial) and the full-rescore fallbacks (hss,
// ds, kcore) all pass through the same oracle.
func TestIncrementalBitIdenticalAllMethods(t *testing.T) {
	ran := 0
	for _, m := range Methods() {
		if !m.CanScore() {
			continue // mst: extract-only, nothing to re-score
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			incrementalHarness(t, m)
		})
		ran++
	}
	if ran < 7 {
		t.Fatalf("harness covered %d methods; expected at least 7 registered scoring methods", ran)
	}
}

// TestRescoreDirtyCounts pins that the frontier signatures actually
// re-score less than the full table (the perf contract behind the
// bit-identity one), and that fallback methods report a full rescore.
func TestRescoreDirtyCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 200
	b := NewBuilder(false)
	b.AddNodes(n)
	for i := 0; i < 2000; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			b.MustAddEdge(u, v, float64(rng.Intn(50)+1))
		}
	}
	base := b.Build()
	ctx := context.Background()

	cases := []struct {
		method  string
		partial bool // frontier methods re-score strictly less than the table
	}{
		{"nt", true},
		{"df", true},
		{"nc", false},
		{"kcore", false}, // no capability: transparent full fallback
	}
	for _, tc := range cases {
		m, err := LookupMethod(tc.method)
		if err != nil {
			t.Fatal(err)
		}
		old, err := ScoreContext(ctx, base, WithMethod(tc.method))
		if err != nil {
			t.Fatal(err)
		}
		d := graph.NewDelta(base, 0)
		if err := d.Apply([]Update{{Src: 0, Dst: 1, Weight: 7}}); err != nil {
			t.Fatal(err)
		}
		g, dirty := d.Graph()
		s, rescored, err := filter.RescoreDirty(ctx, m, old, dirty, filter.ScoreOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if tc.partial {
			if rescored == 0 || rescored >= g.NumEdges() {
				t.Fatalf("%s: rescored %d of %d rows; expected a strict subset", tc.method, rescored, g.NumEdges())
			}
		} else if rescored != g.NumEdges() {
			t.Fatalf("%s: rescored %d of %d rows; expected full rescore", tc.method, rescored, g.NumEdges())
		}
		want, err := ScoreContext(ctx, g, WithMethod(tc.method))
		if err != nil {
			t.Fatal(err)
		}
		requireTablesBitIdentical(t, tc.method, 0, s, want)
	}
}

// TestIncrementalExclusiveBitIdentical drives the scoring methods
// through an exclusive (move-semantics) overlay — the daemon session
// configuration, where each generation's graph arrays and score columns
// are recycled in place — chaining every step's table out of the
// previous one, and checks each step against a cold rebuild + full
// rescore. Unlike incrementalHarness, the previous table is used
// exactly once per step: the surrender contract forbids re-reading it.
func TestIncrementalExclusiveBitIdentical(t *testing.T) {
	for _, method := range []string{"nt", "df", "nc"} {
		method := method
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			m, err := LookupMethod(method)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			const n = 30
			b := NewBuilder(false)
			b.AddNodes(n)
			for i := 0; i < 120; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					b.MustAddEdge(u, v, float64(rng.Intn(50)+1))
				}
			}
			base := b.Build()

			state := make(map[[2]int32]float64)
			var order [][2]int32
			for _, e := range base.Edges() {
				state[[2]int32{e.Src, e.Dst}] = e.Weight
				order = append(order, [2]int32{e.Src, e.Dst})
			}
			coldBuild := func() *Graph {
				cb := NewBuilder(false)
				cb.AddNodes(n)
				for _, k := range order {
					if w := state[k]; w > 0 {
						cb.MustAddEdge(int(k[0]), int(k[1]), w)
					}
				}
				return cb.Build()
			}

			d := graph.NewDelta(base, 16) // small limit: the stream crosses compaction
			d.SetExclusive(true)
			ctx := context.Background()
			var prev *Scores

			for step := 0; step < 25; step++ {
				// Occasionally stack two Apply calls before materializing,
				// so sinceLast batches merge.
				applies := rng.Intn(2) + 1
				for a := 0; a < applies; a++ {
					batch := make([]Update, rng.Intn(5)+1)
					for i := range batch {
						u := Update{Src: int32(rng.Intn(n)), Dst: int32(rng.Intn(n))}
						for u.Src == u.Dst {
							u.Dst = int32(rng.Intn(n))
						}
						if rng.Intn(4) != 0 {
							u.Weight = float64(rng.Intn(40) + 1)
						}
						batch[i] = u
						src, dst := u.Src, u.Dst
						if src > dst {
							src, dst = dst, src
						}
						k := [2]int32{src, dst}
						if _, seen := state[k]; !seen {
							order = append(order, k)
						}
						state[k] = u.Weight
					}
					if err := d.Apply(batch); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
				g, dirty := d.Graph()
				if !dirty.Exclusive {
					t.Fatalf("step %d: dirty record lost the exclusive flag", step)
				}

				inc, _, err := filter.RescoreDirty(ctx, m, prev, dirty, filter.ScoreOpts{})
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				want, err := ScoreContext(ctx, coldBuild(), WithMethod(method))
				if err != nil {
					t.Fatalf("step %d: cold: %v", step, err)
				}
				requireTablesBitIdentical(t, method, step, inc, want)

				if m.Cut != nil {
					incB, err := BackboneContext(ctx, g, WithMethod(method), WithScores(inc))
					if err != nil {
						t.Fatalf("step %d: incremental backbone: %v", step, err)
					}
					wantB, err := BackboneContext(ctx, coldBuild(), WithMethod(method))
					if err != nil {
						t.Fatalf("step %d: cold backbone: %v", step, err)
					}
					requireBackbonesEqual(t, method, step, incB.Backbone, wantB.Backbone)
				}
				prev = inc
			}
		})
	}
}
