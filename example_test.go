package repro_test

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

// A backboning run under a deadline: the context bounds scoring, and
// cancelling it mid-run returns ctx.Err() instead of a Result.
func ExampleBackboneContext() {
	b := repro.NewBuilder(false)
	for _, e := range []struct {
		src, dst string
		w        float64
	}{
		{"a", "b", 120}, {"b", "c", 95}, {"a", "c", 110},
		{"a", "d", 2}, {"b", "d", 1}, {"c", "d", 3},
	} {
		if err := b.AddEdgeLabels(e.src, e.dst, e.w); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := repro.BackboneContext(ctx, g,
		repro.WithMethod("nc"), repro.WithDelta(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s backbone: %d of %d edges\n", res.Method, res.Backbone.NumEdges(), g.NumEdges())
	// Output:
	// nc backbone: 4 of 6 edges
}

// ReadGraph sniffs the encoding — ndjson here — and WriteGraph
// round-trips it into any registered format.
func ExampleReadGraph() {
	in := `{"src": "rome", "dst": "paris", "weight": 55}
{"src": "rome", "dst": "milan", "weight": 43.5}
{"src": "paris", "dst": "lyon", "weight": 12}
`
	g, err := repro.ReadGraph(strings.NewReader(in))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	var out strings.Builder
	if err := repro.WriteGraph(&out, g, repro.WithFormat("tsv")); err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.String())
	// Output:
	// graph{undirected, 4 nodes, 3 edges, total weight 221}
	// src	dst	weight
	// rome	paris	55
	// rome	milan	43.5
	// paris	lyon	12
}

// Example_evaluate grades several backboning methods on one network at
// a common backbone size — the paper's evaluation protocol as a single
// call. Criteria without inputs (stability needs a second snapshot,
// recovery a ground truth) come back NaN and marshal to JSON null.
func Example_evaluate() {
	b := repro.NewBuilder(false)
	for _, e := range []struct {
		src, dst string
		w        float64
	}{
		{"a", "b", 120}, {"b", "c", 95}, {"a", "c", 110},
		{"a", "d", 2}, {"b", "d", 1}, {"c", "d", 3},
	} {
		if err := b.AddEdgeLabels(e.src, e.dst, e.w); err != nil {
			log.Fatal(err)
		}
	}
	g := b.Build()

	rep, err := repro.Compare(g,
		repro.WithMethods("nc", "nt", "mst"),
		repro.WithTopK(3))
	if err != nil {
		log.Fatal(err)
	}
	for _, me := range rep.Methods {
		fmt.Printf("%s: %d edges, coverage %.2f\n", me.Method, me.Edges, float64(me.Coverage))
	}
	fmt.Printf("best: %s\n", rep.Ranking[0])
	// Output:
	// nc: 3 edges, coverage 0.75
	// nt: 3 edges, coverage 0.75
	// mst: 3 edges, coverage 1.00
	// best: mst
}
